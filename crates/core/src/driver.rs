//! The overall algorithm (Fig. 2): alternate refinement with `CheckSafe`,
//! then with `CheckAttack`.

use crate::attack::AttackSpec;
use crate::mgt::most_general_trail;
use crate::refine::{block_split, refine_partition, RefineMode};
use crate::trail::BranchSyms;
use crate::tree::{NodeStatus, SplitKind, TrailTree};
use blazer_absint::transfer::entry_state;
use blazer_absint::{DimMap, EdgeAlphabet, ProductGraph, SeedMap};
use blazer_automata::{antichain, AntichainStats, Dfa, Regex};
use blazer_bounds::{graph_bounds_seeded, BoundResult, Observer, SeededBounds};
use blazer_domains::{AbstractDomain, IntervalVec, Octagon, Polyhedron, Zone};
use blazer_interp::Value;
use blazer_ir::budget::{self, Budget, BudgetReport, Resource};
use blazer_ir::cost::CostModel;
use blazer_ir::{CallCost, Cfg, Function, Inst, NodeId, Program, Terminator};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Which numeric abstract domain the analysis runs in (the domain-ablation
/// axis of the evaluation). Polyhedra match the original tool's PPL
/// backend; the weaker domains are faster but may fail to verify programs
/// whose safety needs relational or non-unit-coefficient invariants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DomainKind {
    /// Per-variable intervals.
    Interval,
    /// Difference-bound matrices.
    Zone,
    /// Octagons.
    Octagon,
    /// Convex polyhedra (default; matches the paper).
    #[default]
    Polyhedra,
}

impl DomainKind {
    /// The next-coarser domain on the degradation ladder, or `None` for the
    /// coarsest (intervals).
    pub fn coarser(self) -> Option<DomainKind> {
        match self {
            DomainKind::Polyhedra => Some(DomainKind::Octagon),
            DomainKind::Octagon => Some(DomainKind::Zone),
            DomainKind::Zone => Some(DomainKind::Interval),
            DomainKind::Interval => None,
        }
    }
}

impl fmt::Display for DomainKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DomainKind::Interval => "interval",
            DomainKind::Zone => "zone",
            DomainKind::Octagon => "octagon",
            DomainKind::Polyhedra => "polyhedra",
        })
    }
}

/// Analysis configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// The attacker's observational model (narrowness criterion).
    pub observer: Observer,
    /// Maximum number of trail-tree nodes before giving up.
    pub max_trails: usize,
    /// Maximum regex size of a single trail.
    pub max_trail_size: usize,
    /// The machine cost model.
    pub cost_model: CostModel,
    /// Whether to search for an attack specification after safety fails.
    pub synthesize_attack: bool,
    /// How many times a loop may be unrolled by star splits along one
    /// refinement path (the paper's "parameters around the size and form
    /// of the partitions", Sec. 4.4).
    pub max_star_unrollings: usize,
    /// The numeric abstract domain to analyze with.
    pub domain: DomainKind,
    /// Resource caps for one analysis (unlimited by default). On
    /// exhaustion the driver degrades gracefully and answers
    /// [`Verdict::Unknown`] with [`UnknownReason::BudgetExhausted`].
    pub budget: Budget,
    /// Number of worker threads for per-round trail evaluation. `None`
    /// defers to the `BLAZER_THREADS` environment variable, falling back to
    /// the machine's available parallelism; `Some(1)` evaluates strictly
    /// sequentially on the calling thread (no workers are spawned).
    /// Verdicts, tree shapes, and degradation lists are identical at every
    /// width — threads change wall-clock time only.
    pub threads: Option<usize>,
    /// Whether child trails' fixpoints are seeded from their parent's
    /// converged post-states (incremental fixpoint seeding). Defaults to
    /// `true`; `BLAZER_NO_SEED=1` disables it at runtime for A/B
    /// comparisons. Seeding changes pass counts, never verdicts: on debug
    /// builds every seeded result is checked against a from-⊥ rerun and
    /// rejected (with a from-⊥ fallback) if it differs.
    pub seed_fixpoints: bool,
    /// When `true`, [`Blazer::analyze`] draws against the budget ledger
    /// already installed on the calling thread (if any) instead of
    /// installing a fresh one from [`Config::budget`]. This is how a
    /// portfolio scheduler races several backends against one shared
    /// ledger: workers install a [`blazer_ir::budget::BudgetHandle`] and
    /// run the driver with this flag, so caps stay globally enforced and a
    /// revocation of the shared ledger cancels the run cooperatively.
    /// Defaults to `false`: a plain analysis is always isolated.
    pub use_ambient_budget: bool,
}

impl Config {
    /// The MicroBench configuration: degree-equivalence observer.
    pub fn microbench() -> Self {
        Config {
            observer: Observer::degree(),
            max_trails: 48,
            max_trail_size: 20_000,
            cost_model: CostModel::unit(),
            synthesize_attack: true,
            max_star_unrollings: 2,
            domain: DomainKind::Polyhedra,
            budget: Budget::unlimited(),
            threads: None,
            seed_fixpoints: true,
            use_ambient_budget: false,
        }
    }

    /// The STAC / literature configuration: concrete 25k-instruction
    /// threshold at 4096-magnitude inputs (Sec. 6.1).
    pub fn stac() -> Self {
        Config { observer: Observer::stac(), ..Config::microbench() }
    }

    /// Builder-style observer override.
    pub fn with_observer(mut self, observer: Observer) -> Self {
        self.observer = observer;
        self
    }

    /// Builder-style numeric-domain override (the ablation axis).
    pub fn with_domain(mut self, domain: DomainKind) -> Self {
        self.domain = domain;
        self
    }

    /// Builder-style observer cost-model override. Every backend — the
    /// decomposition driver, the self-composition baseline, and the
    /// concrete interpreter used for witness concretization — derives its
    /// pricing from this one field, so a portfolio race always prices a
    /// program identically across racers.
    pub fn with_cost_model(mut self, cost_model: CostModel) -> Self {
        self.cost_model = cost_model;
        self
    }

    /// Builder-style refinement budget override.
    pub fn with_max_trails(mut self, max_trails: usize) -> Self {
        self.max_trails = max_trails;
        self
    }

    /// Builder-style resource-budget override.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Builder-style wall-clock deadline.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.budget = self.budget.clone().with_deadline(timeout);
        self
    }

    /// Builder-style LP-call cap.
    pub fn with_max_lp_calls(mut self, n: u64) -> Self {
        self.budget = self.budget.clone().with_max_lp_calls(n);
        self
    }

    /// Builder-style worker-thread width (`1` = strictly sequential).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Builder-style incremental-seeding override (`false` = every trail's
    /// fixpoint starts from ⊥, the pre-seeding behavior).
    pub fn with_seeding(mut self, seed_fixpoints: bool) -> Self {
        self.seed_fixpoints = seed_fixpoints;
        self
    }

    /// Builder-style ambient-budget mode: the analysis consumes against the
    /// ledger already installed on the calling thread instead of installing
    /// its own (see [`Config::use_ambient_budget`]).
    pub fn with_ambient_budget(mut self) -> Self {
        self.use_ambient_budget = true;
        self
    }

    /// Whether incremental fixpoint seeding is active: the config flag,
    /// unless `BLAZER_NO_SEED` (set to anything but `0`) switches it off.
    pub fn effective_seeding(&self) -> bool {
        if std::env::var("BLAZER_NO_SEED").is_ok_and(|v| v.trim() != "0" && !v.trim().is_empty()) {
            return false;
        }
        self.seed_fixpoints
    }

    /// The evaluation width actually used: an explicit [`Config::threads`]
    /// wins, then a positive `BLAZER_THREADS` environment variable, then the
    /// machine's available parallelism.
    pub fn effective_threads(&self) -> usize {
        if let Some(n) = self.threads {
            return n.max(1);
        }
        if let Some(n) =
            std::env::var("BLAZER_THREADS").ok().and_then(|s| s.trim().parse::<usize>().ok())
        {
            if n > 0 {
                return n;
            }
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::microbench()
    }
}

/// Why an analysis answered [`Verdict::Unknown`] — machine-readable so
/// harnesses can distinguish "the search space ran out" from "the machine
/// budget ran out".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnknownReason {
    /// Neither the safety nor the attack search could make progress with
    /// the remaining refinement options (the paper's give-up case).
    SearchExhausted,
    /// Safety verification failed and attack synthesis was disabled.
    AttackSynthesisDisabled,
    /// A resource cap tripped; the result is inconclusive, not wrong.
    BudgetExhausted(Resource),
}

impl fmt::Display for UnknownReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnknownReason::SearchExhausted => {
                f.write_str("refinement search exhausted without a conclusive partition")
            }
            UnknownReason::AttackSynthesisDisabled => {
                f.write_str("safety not proved and attack synthesis is disabled")
            }
            UnknownReason::BudgetExhausted(r) => write!(f, "analysis budget exhausted: {r}"),
        }
    }
}

/// The verdict of one analysis (the three outputs of Fig. 2).
#[derive(Debug, Clone)]
pub enum Verdict {
    /// The program is verifiably free of timing channels.
    Safe,
    /// An attack specification was synthesized.
    Attack(AttackSpec),
    /// The tool gives up ("failed to produce a meaningful summary"),
    /// carrying the reason.
    Unknown(UnknownReason),
}

impl Verdict {
    /// Whether this is [`Verdict::Safe`].
    pub fn is_safe(&self) -> bool {
        matches!(self, Verdict::Safe)
    }

    /// Whether this is an attack.
    pub fn is_attack(&self) -> bool {
        matches!(self, Verdict::Attack(_))
    }

    /// Short machine-readable verdict class: `"safe"`, `"attack"`, or
    /// `"unknown"` (the JSON wire vocabulary of reports and the service).
    pub fn code(&self) -> &'static str {
        match self {
            Verdict::Safe => "safe",
            Verdict::Attack(_) => "attack",
            Verdict::Unknown(_) => "unknown",
        }
    }

    /// The unknown-reason, for [`Verdict::Unknown`].
    pub fn unknown_reason(&self) -> Option<UnknownReason> {
        match self {
            Verdict::Unknown(r) => Some(*r),
            _ => None,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Safe => f.write_str("safe"),
            Verdict::Attack(_) => f.write_str("attack specification found"),
            Verdict::Unknown(reason) => write!(f, "unknown ({reason})"),
        }
    }
}

/// One graceful domain fallback taken while analyzing a trail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degradation {
    /// The trail-tree node whose bounds were being computed.
    pub node: usize,
    /// The domain that failed.
    pub from: DomainKind,
    /// The coarser domain retried.
    pub to: DomainKind,
    /// Why the fallback happened.
    pub reason: DegradeReason,
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trail {}: {} -> {} ({})", self.node, self.from, self.to, self.reason)
    }
}

/// Why the driver degraded a trail to a coarser domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// Rational arithmetic overflowed and was absorbed as precision loss.
    Overflow,
    /// The LP-call budget ran out; a rescue grant funded the retry.
    LpBudget,
}

impl fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DegradeReason::Overflow => "rational overflow absorbed",
            DegradeReason::LpBudget => "LP-call budget exhausted",
        })
    }
}

/// What incremental fixpoint seeding did during one analysis: how many
/// evaluated trails started from a parent's post-states vs. from ⊥, and
/// how many seeded results the debug-path soundness check rejected
/// (falling back to the from-⊥ result — nonzero only when a seed lost
/// precision, which the committed benchmark suite never exhibits).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SeedStats {
    /// Trails whose top-level fixpoint started from a parent seed.
    pub trails_seeded: u64,
    /// Trails evaluated from ⊥ (the root, cache-missing parents, degraded
    /// ladders, or seeding disabled).
    pub trails_unseeded: u64,
    /// Seeded results rejected by the debug equivalence check.
    pub seeds_rejected: u64,
    /// Fixpoint passes of seeded top-level runs (their nested loop
    /// summaries excluded).
    pub seeded_passes: u64,
    /// Fixpoint passes of from-⊥ top-level runs.
    pub unseeded_passes: u64,
}

impl SeedStats {
    fn absorb_eval(&mut self, out: &EvalOut) {
        if out.seeded {
            self.trails_seeded += 1;
            self.seeded_passes += out.top_passes;
        } else {
            self.trails_unseeded += 1;
            self.unseeded_passes += out.top_passes;
        }
        self.seeds_rejected += u64::from(out.seed_rejected);
    }
}

/// The complete result of analyzing one function.
#[derive(Debug, Clone)]
pub struct AnalysisOutcome {
    /// The analyzed function's name.
    pub function: String,
    /// The verdict.
    pub verdict: Verdict,
    /// The tree of trails (Fig. 1).
    pub tree: TrailTree,
    /// Wall-clock time of the safety-verification phase.
    pub safety_time: Duration,
    /// Wall-clock time of the attack-synthesis phase, when it ran.
    pub attack_time: Option<Duration>,
    /// CFG size in basic blocks (the `Size` column of Table 1).
    pub n_blocks: usize,
    /// Domain fallbacks taken while computing trail bounds (empty on an
    /// undisturbed run).
    pub degradations: Vec<Degradation>,
    /// What the analysis consumed against its [`Budget`].
    pub budget_report: BudgetReport,
    /// What incremental fixpoint seeding did (all zeros on the fast path
    /// and when seeding is disabled).
    pub seed_stats: SeedStats,
    /// What the antichain automata engine did: macro-states explored,
    /// ⊆-dominated macro-states pruned, and decisions routed to the classic
    /// eager engine (non-zero only under `BLAZER_AUTOMATA=classic`).
    pub antichain_stats: AntichainStats,
    /// The observer cost model this analysis priced costs under. Witness
    /// concretization must measure with the same model, and responses
    /// surface it so cached verdicts are attributable.
    pub cost_model: CostModel,
}

impl AnalysisOutcome {
    /// Renders the trail tree with variable names (Fig. 1 style).
    pub fn render_tree(&self, program: &Program) -> String {
        let Some(f) = program.function(&self.function) else {
            return String::new();
        };
        let dims = DimMap::new(f);
        let name_of = move |d: usize| dims.describe(f, d);
        self.tree.render(&|lo, hi| {
            let lo_s = lo.display_with(&name_of);
            match hi {
                Some(h) => format!("[{lo_s}, {}]", h.display_with(&name_of)),
                None => format!("[{lo_s}, ∞)"),
            }
        })
    }
}

/// Errors from [`Blazer::analyze`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The named function is not in the program.
    NoSuchFunction(String),
    /// The program fails validation.
    InvalidProgram(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NoSuchFunction(n) => write!(f, "no function named `{n}`"),
            CoreError::InvalidProgram(m) => write!(f, "invalid program: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Cache key for one trail's bound result: the canonical (printed) trail
/// regex, the starting domain of the degradation ladder, and the function
/// under analysis. The attack phase's re-splits and sibling-preserving
/// refinements frequently reproduce trails the safety phase already
/// analyzed; the key makes that reuse exact.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct BoundKey {
    function: String,
    domain: DomainKind,
    trail: String,
}

/// A memoized bound computation: the result plus the domain fallbacks taken
/// while computing it (re-emitted, re-keyed to the requesting node, on every
/// cache hit so per-node degradation reporting stays meaningful) and — when
/// the run stayed on the configured domain with a clean budget — the
/// converged per-location post-states, ready to seed this trail's children.
#[derive(Debug, Clone)]
struct CachedBounds {
    result: BoundResult,
    degradations: Vec<(DomainKind, DomainKind, DegradeReason)>,
    post: Option<Arc<SeedMap>>,
}

/// Per-analysis memoization: bound results keyed by [`BoundKey`], and
/// minimized-DFA/restricted-product graphs keyed by the canonical trail
/// regex (shared behind a mutex so parallel workers build each graph at
/// most once per round and reuse it across degradation-ladder rungs and
/// refinement rounds).
#[derive(Debug, Default)]
struct BoundCache {
    bounds: HashMap<BoundKey, CachedBounds>,
    graphs: Mutex<HashMap<String, Arc<ProductGraph>>>,
}

/// The read-only per-analysis inputs shared by every bound evaluation
/// (and by every worker thread).
#[derive(Clone, Copy)]
struct EvalCtx<'a> {
    program: &'a Program,
    f: &'a Function,
    cfg: &'a Cfg,
    alphabet: &'a EdgeAlphabet,
    dims: &'a DimMap,
    /// Build trail product graphs with the eager minimized-DFA pipeline
    /// instead of the lazy on-demand subset construction.
    classic: bool,
}

/// One node's evaluation outcome before it is merged back into the tree.
#[derive(Debug)]
struct EvalOut {
    result: BoundResult,
    degradations: Vec<Degradation>,
    /// Post-states to retain for seeding this trail's children (absent on
    /// degraded ladders, overflow, budget exhaustion, or disabled seeding).
    post: Option<SeedMap>,
    /// Whether the fixpoint actually started from a parent seed.
    seeded: bool,
    /// Whether the debug soundness check rejected the seeded result.
    seed_rejected: bool,
    /// Top-level fixpoint passes of the rung that produced `result`.
    top_passes: u64,
}

/// One evaluation job: the tree node plus the parent post-states to seed
/// its fixpoint from (shared, not cloned, across worker threads).
type EvalJob = (usize, Option<Arc<SeedMap>>);

/// The analyzer.
#[derive(Debug, Clone, Default)]
pub struct Blazer {
    config: Config,
}

impl Blazer {
    /// An analyzer with the given configuration.
    pub fn new(config: Config) -> Self {
        Blazer { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Analyzes `func` within `program` per Fig. 2: prove safety, else
    /// synthesize an attack specification, else give up.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] when the program is malformed or the function
    /// missing.
    pub fn analyze(&self, program: &Program, func: &str) -> Result<AnalysisOutcome, CoreError> {
        // The budget governs everything downstream of this point; the guard
        // restores any previously installed budget on every return path. In
        // ambient mode the analysis joins the caller's already-installed
        // shared ledger (portfolio racing) instead of isolating itself; with
        // nothing installed, the configured budget applies as usual.
        let _budget_guard = if self.config.use_ambient_budget {
            match budget::handle() {
                Some(ambient) => ambient.install(),
                None => self.config.budget.install(),
            }
        } else {
            self.config.budget.install()
        };
        // One stats ledger per analysis: the antichain engine's counters
        // accumulate here (worker threads re-install the same collector).
        // The engine choice is read once so a mid-analysis environment
        // change cannot mix engines within one run.
        let stats = antichain::StatsCollector::new();
        let _stats_guard = stats.install();
        let classic = antichain::classic_mode();
        program.validate().map_err(CoreError::InvalidProgram)?;
        let f =
            program.function(func).ok_or_else(|| CoreError::NoSuchFunction(func.to_string()))?;
        let start = Instant::now();
        let mut degradations: Vec<Degradation> = Vec::new();
        let mut seed_stats = SeedStats::default();

        let cfg = Cfg::new(f);
        let alphabet = EdgeAlphabet::new(&cfg);
        let dims = DimMap::new(f);
        let taint = blazer_taint::analyze_function(program, f);

        // Fast path: with no secret influence on control flow or call
        // costs, there is nothing to leak (nosecret_safe).
        if !has_secret_influence(f, &taint) {
            let mut tree = TrailTree::new(most_general_trail(&cfg, &alphabet));
            tree.node_mut(0).status = NodeStatus::Narrow;
            return Ok(AnalysisOutcome {
                function: func.to_string(),
                verdict: Verdict::Safe,
                tree,
                safety_time: start.elapsed(),
                attack_time: None,
                n_blocks: f.blocks().len(),
                degradations,
                budget_report: budget::report(),
                seed_stats,
                antichain_stats: stats.snapshot(),
                cost_model: self.config.cost_model.clone(),
            });
        }

        let branches = branch_syms(f, &alphabet, &taint);
        let high_seeds: BTreeSet<usize> = f
            .params()
            .iter()
            .enumerate()
            .filter(|(_, p)| p.label.is_high())
            .map(|(i, _)| dims.seed(i))
            .collect();

        let mut tree = TrailTree::new(most_general_trail(&cfg, &alphabet));
        let mut star_depth: Vec<usize> = vec![0];
        let ctx = EvalCtx { program, f, cfg: &cfg, alphabet: &alphabet, dims: &dims, classic };
        let mut cache = BoundCache::default();
        let width = self.config.effective_threads();

        // ---- Safety loop: RefinePartition(safe) + CheckSafe --------------
        let mut budget_stop: Option<Resource> = None;
        let safe = loop {
            if let Err(e) = budget::consume_refinement_step() {
                budget_stop = Some(e.resource);
                break false;
            }
            // Evaluate all pending leaves of this round as one batch:
            // cache-resolved first, then the misses fanned out across the
            // worker pool, with results merged back in leaf order so the
            // outcome is bit-identical at every width.
            let leaves = tree.leaves();
            let pending: Vec<usize> = leaves
                .iter()
                .copied()
                .filter(|&l| tree.node(l).status == NodeStatus::Pending)
                .collect();
            for (leaf, b) in self.eval_pending(
                &ctx,
                &tree,
                &pending,
                &mut cache,
                &mut degradations,
                &mut seed_stats,
                width,
            ) {
                tree.node_mut(leaf).status = judge(&b, &self.config.observer, &high_seeds);
                tree.node_mut(leaf).bounds = Some(b);
            }
            if leaves
                .iter()
                .all(|&l| matches!(tree.node(l).status, NodeStatus::Narrow | NodeStatus::Empty))
            {
                break true;
            }
            // Refine wide leaves at low-only constructors.
            let mut split_any = false;
            for leaf in leaves {
                if tree.node(leaf).status != NodeStatus::Wide {
                    continue;
                }
                if tree.len() + 2 > self.config.max_trails {
                    continue;
                }
                let allow_star = star_depth[leaf] < self.config.max_star_unrollings;
                let split = refine_partition(
                    &tree.node(leaf).trail,
                    &branches,
                    RefineMode::Safe,
                    allow_star,
                )
                .or_else(|| {
                    branches.iter().find_map(|br| {
                        block_split(
                            &tree.node(leaf).trail,
                            br,
                            alphabet.len() as u32,
                            RefineMode::Safe,
                            self.config.max_trail_size,
                            classic,
                        )
                    })
                });
                let Some(split) = split else { continue };
                if split.parts.iter().any(|p| p.size() > self.config.max_trail_size) {
                    continue;
                }
                let child_depth = star_depth[leaf] + usize::from(split.is_star);
                for part in split.parts {
                    tree.add_child(leaf, part, SplitKind::Taint);
                    star_depth.push(child_depth);
                }
                split_any = true;
            }
            if !split_any {
                break false;
            }
        };
        let safety_time = start.elapsed();
        if safe {
            return Ok(AnalysisOutcome {
                function: func.to_string(),
                verdict: Verdict::Safe,
                tree,
                safety_time,
                attack_time: None,
                n_blocks: f.blocks().len(),
                degradations,
                budget_report: budget::report(),
                seed_stats,
                antichain_stats: stats.snapshot(),
                cost_model: self.config.cost_model.clone(),
            });
        }
        if let Some(resource) = budget_stop {
            // A Wide leaf under an exhausted budget proves nothing: the
            // degraded bounds are over-approximations. Surface the budget,
            // not a (possibly wrong) attack.
            return Ok(AnalysisOutcome {
                function: func.to_string(),
                verdict: Verdict::Unknown(UnknownReason::BudgetExhausted(resource)),
                tree,
                safety_time,
                attack_time: None,
                n_blocks: f.blocks().len(),
                degradations,
                budget_report: budget::report(),
                seed_stats,
                antichain_stats: stats.snapshot(),
                cost_model: self.config.cost_model.clone(),
            });
        }
        if !self.config.synthesize_attack {
            return Ok(AnalysisOutcome {
                function: func.to_string(),
                verdict: Verdict::Unknown(UnknownReason::AttackSynthesisDisabled),
                tree,
                safety_time,
                attack_time: None,
                n_blocks: f.blocks().len(),
                degradations,
                budget_report: budget::report(),
                seed_stats,
                antichain_stats: stats.snapshot(),
                cost_model: self.config.cost_model.clone(),
            });
        }

        // ---- Attack loop: RefinePartition(vulnerable) + CheckAttack ------
        let attack_start = Instant::now();
        let mut verdict = Verdict::Unknown(UnknownReason::SearchExhausted);
        // All nodes produced by secret splits; CHECKATTACK compares any two
        // of them whose *separation* is a secret split (their lowest common
        // ancestor's children on the two paths were produced by a `sec`
        // split — the paper's "T₁ ⊎ T₂ is not a ψ_SC-quotient partition").
        let mut candidates: Vec<usize> = Vec::new();
        'attack: loop {
            if let Err(e) = budget::consume_refinement_step() {
                // Degraded bounds over-approximate, so a pair that looks
                // observably different under exhaustion could be spurious:
                // stop and report the budget instead.
                verdict = Verdict::Unknown(UnknownReason::BudgetExhausted(e.resource));
                break;
            }
            // Split phase: perform every secret split of this round first
            // (sequential and deterministic — split decisions depend only on
            // the pre-round tree), collecting the new children per split.
            let mut split_any = false;
            let mut round_splits: Vec<Vec<usize>> = Vec::new();
            for leaf in tree.leaves() {
                if tree.node(leaf).status != NodeStatus::Wide {
                    continue;
                }
                if tree.len() + 2 > self.config.max_trails {
                    break;
                }
                let allow_star = star_depth[leaf] < self.config.max_star_unrollings;
                let split = refine_partition(
                    &tree.node(leaf).trail,
                    &branches,
                    RefineMode::Vulnerable,
                    allow_star,
                )
                .or_else(|| {
                    branches.iter().find_map(|br| {
                        block_split(
                            &tree.node(leaf).trail,
                            br,
                            alphabet.len() as u32,
                            RefineMode::Vulnerable,
                            self.config.max_trail_size,
                            classic,
                        )
                    })
                });
                let Some(split) = split else { continue };
                if split.parts.iter().any(|p| p.size() > self.config.max_trail_size) {
                    continue;
                }
                split_any = true;
                let child_depth = star_depth[leaf] + usize::from(split.is_star);
                let mut children = Vec::new();
                for part in split.parts {
                    let id = tree.add_child(leaf, part, SplitKind::Secret);
                    star_depth.push(child_depth);
                    children.push(id);
                }
                round_splits.push(children);
            }
            // Evaluation phase: all of the round's new children as one
            // (cached, parallel) batch.
            let new_nodes: Vec<usize> = round_splits.iter().flatten().copied().collect();
            for (id, b) in self.eval_pending(
                &ctx,
                &tree,
                &new_nodes,
                &mut cache,
                &mut degradations,
                &mut seed_stats,
                width,
            ) {
                tree.node_mut(id).status = judge(&b, &self.config.observer, &high_seeds);
                tree.node_mut(id).bounds = Some(b);
            }
            // CHECKATTACK phase: identical pair order to a strictly
            // sequential evaluation, so the reported specification (the
            // first observably-different sec-separated pair) is the same at
            // every thread count.
            for children in &round_splits {
                for &c in children {
                    for &d in &candidates {
                        if !sec_separated(&tree, c, d) {
                            continue;
                        }
                        if let Some(spec) = check_attack_pair(&self.config.observer, &tree, c, d) {
                            tree.node_mut(c).status = NodeStatus::Attack;
                            tree.node_mut(d).status = NodeStatus::Attack;
                            verdict = Verdict::Attack(spec);
                            break 'attack;
                        }
                    }
                    candidates.push(c);
                }
                // Siblings of one split are always sec-separated.
                for (ai, &a) in children.iter().enumerate() {
                    for &b in &children[ai + 1..] {
                        if let Some(spec) = check_attack_pair(&self.config.observer, &tree, a, b) {
                            tree.node_mut(a).status = NodeStatus::Attack;
                            tree.node_mut(b).status = NodeStatus::Attack;
                            verdict = Verdict::Attack(spec);
                            break 'attack;
                        }
                    }
                }
            }
            if !split_any || tree.len() >= self.config.max_trails {
                break;
            }
        }
        Ok(AnalysisOutcome {
            function: func.to_string(),
            verdict,
            tree,
            safety_time,
            attack_time: Some(attack_start.elapsed()),
            n_blocks: f.blocks().len(),
            degradations,
            budget_report: budget::report(),
            seed_stats,
            antichain_stats: stats.snapshot(),
            cost_model: self.config.cost_model.clone(),
        })
    }

    /// Evaluates a batch of tree nodes (one refinement round's pending
    /// leaves) and returns `(node, bounds)` pairs in `nodes` order.
    ///
    /// The batch is resolved in three deterministic stages, identical at
    /// every thread width:
    ///
    /// 1. **Cache lookup** in `nodes` order: hits reuse the memoized
    ///    [`BoundResult`] (re-emitting its degradations keyed to the
    ///    requesting node), and duplicate trails within the batch collapse
    ///    onto one job, so the set of *evaluated* trails does not depend on
    ///    scheduling.
    /// 2. **Evaluation** of the remaining jobs: sequential on the calling
    ///    thread at width 1 (exactly the pre-parallel behavior), otherwise
    ///    fanned out over `std::thread::scope` workers that pull jobs from a
    ///    shared index and install this analysis' shared budget handle, so
    ///    every resource cap stays one global ledger.
    /// 3. **Merge** in `nodes` order: degradations, cache insertions, and
    ///    results are committed in leaf order regardless of which worker
    ///    finished first. A worker panic (e.g. an injected fault) is
    ///    re-raised here with its original payload, after all workers have
    ///    finished.
    #[allow(clippy::too_many_arguments)]
    fn eval_pending(
        &self,
        ctx: &EvalCtx<'_>,
        tree: &TrailTree,
        nodes: &[usize],
        cache: &mut BoundCache,
        degradations: &mut Vec<Degradation>,
        seed_stats: &mut SeedStats,
        width: usize,
    ) -> Vec<(usize, BoundResult)> {
        enum Source {
            /// Served from the cross-round bound cache.
            Hit(CachedBounds),
            /// Evaluated by job index this round.
            Job(usize),
            /// Duplicate of another node's trail in this same batch.
            Dup(usize),
        }
        let seeding = self.config.effective_seeding();
        let BoundCache { bounds: cached_bounds, graphs } = cache;
        let mut plan: Vec<(usize, Source)> = Vec::with_capacity(nodes.len());
        let mut jobs: Vec<EvalJob> = Vec::new();
        let mut job_keys: Vec<BoundKey> = Vec::new();
        let mut job_by_key: HashMap<BoundKey, usize> = HashMap::new();
        for &node in nodes {
            let key = BoundKey {
                function: ctx.f.name().to_string(),
                domain: self.config.domain,
                trail: tree.node(node).trail.to_string(),
            };
            if let Some(hit) = cached_bounds.get(&key) {
                plan.push((node, Source::Hit(hit.clone())));
            } else if let Some(&j) = job_by_key.get(&key) {
                plan.push((node, Source::Dup(j)));
            } else {
                // Seed lookup: the parent trail was evaluated in an earlier
                // round (children only ever sprout from judged leaves), so
                // its cache entry — when the ladder stayed clean — carries
                // the post-states this child starts from.
                let seed = if seeding {
                    tree.node(node).parent.and_then(|p| {
                        let parent_key = BoundKey {
                            function: ctx.f.name().to_string(),
                            domain: self.config.domain,
                            trail: tree.node(p).trail.to_string(),
                        };
                        cached_bounds.get(&parent_key).and_then(|hit| hit.post.clone())
                    })
                } else {
                    None
                };
                let j = jobs.len();
                jobs.push((node, seed));
                job_keys.push(key.clone());
                job_by_key.insert(key, j);
                plan.push((node, Source::Job(j)));
            }
        }

        let outs: Vec<EvalOut> = if width <= 1 || jobs.len() <= 1 {
            jobs.iter()
                .map(|(node, seed)| {
                    self.bounds_for(ctx, graphs, &tree.node(*node).trail, *node, seed.as_deref())
                })
                .collect()
        } else {
            self.eval_jobs_parallel(ctx, tree, &jobs, graphs, width)
        };

        let mut merged = Vec::with_capacity(nodes.len());
        for (node, source) in plan {
            match source {
                Source::Hit(hit) => {
                    degradations.extend(
                        hit.degradations.iter().map(|&(from, to, reason)| Degradation {
                            node,
                            from,
                            to,
                            reason,
                        }),
                    );
                    merged.push((node, hit.result.clone()));
                }
                Source::Job(j) => {
                    let out = &outs[j];
                    degradations.extend(out.degradations.iter().cloned());
                    seed_stats.absorb_eval(out);
                    cached_bounds.insert(
                        job_keys[j].clone(),
                        CachedBounds {
                            result: out.result.clone(),
                            degradations: out
                                .degradations
                                .iter()
                                .map(|d| (d.from, d.to, d.reason))
                                .collect(),
                            post: out.post.clone().map(Arc::new),
                        },
                    );
                    merged.push((node, out.result.clone()));
                }
                Source::Dup(j) => {
                    let out = &outs[j];
                    degradations
                        .extend(out.degradations.iter().map(|d| Degradation { node, ..d.clone() }));
                    merged.push((node, out.result.clone()));
                }
            }
        }
        merged
    }

    /// Fans `jobs` (tree-node index plus optional parent seed) out over a
    /// scoped worker pool of the given width. Results come back indexed by
    /// job, so callers can merge deterministically; the first panicking
    /// job's payload (in job order) is re-raised after every worker has
    /// stopped.
    fn eval_jobs_parallel(
        &self,
        ctx: &EvalCtx<'_>,
        tree: &TrailTree,
        jobs: &[EvalJob],
        graphs: &Mutex<HashMap<String, Arc<ProductGraph>>>,
        width: usize,
    ) -> Vec<EvalOut> {
        type JobSlot = Mutex<Option<std::thread::Result<EvalOut>>>;
        let slots: Vec<JobSlot> = jobs.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let handle = budget::handle();
        let stats = antichain::stats_handle();
        std::thread::scope(|scope| {
            for _ in 0..width.min(jobs.len()) {
                scope.spawn(|| {
                    // All caps (and BLAZER_FAULT injection) stay globally
                    // enforced: the worker consumes against the same shared
                    // ledger the driver thread installed. The antichain
                    // stats collector is shared the same way, so counters
                    // aggregate across workers.
                    let _budget = handle.as_ref().map(|h| h.install());
                    let _stats = stats.as_ref().map(|s| s.install());
                    loop {
                        let i = next.fetch_add(1, Ordering::SeqCst);
                        if i >= jobs.len() {
                            break;
                        }
                        let (node, seed) = &jobs[i];
                        let out = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            self.bounds_for(
                                ctx,
                                graphs,
                                &tree.node(*node).trail,
                                *node,
                                seed.as_deref(),
                            )
                        }));
                        *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
                    }
                });
            }
        });
        let mut outs = Vec::with_capacity(jobs.len());
        let mut first_panic = None;
        for slot in slots {
            match slot.into_inner().unwrap_or_else(|e| e.into_inner()) {
                Some(Ok(out)) => outs.push(out),
                Some(Err(payload)) => {
                    first_panic.get_or_insert(payload);
                    outs.push(EvalOut {
                        result: BoundResult { lower: None, upper: None },
                        degradations: Vec::new(),
                        post: None,
                        seeded: false,
                        seed_rejected: false,
                        top_passes: 0,
                    });
                }
                None => unreachable!("every job index is claimed by some worker"),
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
        outs
    }

    /// BOUNDANALYSIS for one trail: restrict the product to the trail's
    /// minimized DFA and compute symbolic bounds in the configured domain.
    ///
    /// When the run absorbs a rational overflow, or exhausts the LP-call
    /// budget and a rescue grant is available, the trail is retried down the
    /// degradation ladder (polyhedra → octagon → zone → interval); each
    /// fallback is recorded in the returned [`EvalOut`]. A dead wall-clock
    /// deadline is never retried.
    ///
    /// The optional `seed` (the parent trail's converged post-states) is
    /// applied only on the ladder's first rung — coarser retries restart
    /// from ⊥ exactly as before — and the trail's own post-states are
    /// retained for its future children only when that first rung completes
    /// cleanly (no overflow, no budget exhaustion). On debug builds (or
    /// under `BLAZER_CHECK_SEEDS`) every seeded result is re-derived from ⊥
    /// and must match bit-for-bit; a divergence discards the seeded result
    /// in favor of the baseline (or panics under `BLAZER_ASSERT_SEEDS`).
    fn bounds_for(
        &self,
        ctx: &EvalCtx<'_>,
        graphs: &Mutex<HashMap<String, Arc<ProductGraph>>>,
        trail: &Regex,
        node: usize,
        seed: Option<&SeedMap>,
    ) -> EvalOut {
        let EvalCtx { program, f, cfg, alphabet, dims, classic } = *ctx;
        let graph_key = trail.to_string();
        let cached = graphs.lock().unwrap_or_else(|e| e.into_inner()).get(&graph_key).cloned();
        let graph: Arc<ProductGraph> = match cached {
            Some(g) => g,
            None => {
                // Both engines materialize the *minimized* DFA here: the
                // subset product (ProductGraph::try_restricted_lazy)
                // empirically loses upper-bound precision — duplicated loop
                // heads inside one SCC weaken the widening-based bounds to
                // ∞ — so minimization is load-bearing for the product graph
                // even though the yes/no decision procedures never need it.
                if classic {
                    antichain::note_classic_fallback();
                }
                let built = Dfa::try_from_regex(trail, alphabet.len() as u32)
                    .map(|dfa| ProductGraph::restricted(f, cfg, &dfa.minimize(), alphabet));
                let g = match built {
                    Ok(g) => Arc::new(g),
                    Err(e) => {
                        // Graph construction exhausted the budget: this
                        // trail's bounds degrade to [0, ∞), the same shape
                        // an overflow under exhaustion produces below.
                        budget::note_degradation(format!(
                            "driver: trail {node}: product construction exhausted \
                             ({:?}); widening bounds to [0, ∞)",
                            e.resource
                        ));
                        return EvalOut {
                            result: BoundResult {
                                lower: Some(blazer_bounds::CostExpr::zero()),
                                upper: None,
                            },
                            degradations: Vec::new(),
                            post: None,
                            seeded: false,
                            seed_rejected: false,
                            top_passes: 0,
                        };
                    }
                };
                if std::env::var("BLAZER_TRACE_BOUNDS").is_ok() {
                    eprintln!(
                        "bounds_for: trail size {} product {}/{} exits {}",
                        trail.size(),
                        g.len(),
                        g.edges().len(),
                        g.exits().len()
                    );
                }
                // Two workers may race to build the same graph; both arrive
                // at identical results, so last-writer-wins is benign.
                graphs
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .entry(graph_key)
                    .or_insert(g)
                    .clone()
            }
        };
        fn run<D: AbstractDomain>(
            program: &Program,
            f: &Function,
            dims: &DimMap,
            graph: &ProductGraph,
            cost_model: &CostModel,
            seed: Option<&SeedMap>,
            collect_post: bool,
        ) -> SeededBounds {
            let init: D = entry_state(f, dims);
            let seeds: BTreeSet<usize> = dims.seeds().collect();
            graph_bounds_seeded(
                program,
                f,
                dims,
                graph,
                &init,
                cost_model,
                &seeds,
                seed,
                collect_post,
            )
        }
        /// Extra LP calls granted per coarser-domain retry.
        const LP_RESCUE: u64 = 256;
        let cm = &self.config.cost_model;
        let collect = self.config.effective_seeding();
        let run_domain = |d: DomainKind, use_seed: Option<&SeedMap>, want_post: bool| match d {
            DomainKind::Interval => {
                run::<IntervalVec>(program, f, dims, &graph, cm, use_seed, want_post)
            }
            DomainKind::Zone => run::<Zone>(program, f, dims, &graph, cm, use_seed, want_post),
            DomainKind::Octagon => {
                run::<Octagon>(program, f, dims, &graph, cm, use_seed, want_post)
            }
            DomainKind::Polyhedra => {
                run::<Polyhedron>(program, f, dims, &graph, cm, use_seed, want_post)
            }
        };
        let mut domain = self.config.domain;
        let mut degradations: Vec<Degradation> = Vec::new();
        let mut seeded = false;
        let mut seed_rejected = false;
        let mut top_passes: u64 = 0;
        let mut post: Option<SeedMap> = None;
        // Run each rung with a clean thread-local overflow flag: saturation
        // outside the absorption points (e.g. in cost-expression arithmetic)
        // only raises the flag, and bounds computed with saturated rationals
        // may be wrong, not just imprecise.
        let outer_overflow = blazer_domains::rational::take_overflow();
        let result = loop {
            // Seeding only applies on the ladder's first rung: the parent's
            // post-states were converged in `self.config.domain`, and a
            // degraded retry must behave exactly as it did before seeding.
            let first_rung = domain == self.config.domain;
            let use_seed = if first_rung { seed } else { None };
            let want_post = collect && first_rung;
            let overflow_before = budget::local_overflow_events();
            let mut out = run_domain(domain, use_seed, want_post);
            if first_rung {
                seeded = out.seeded;
                top_passes = out.top_passes;
            }
            if std::env::var("BLAZER_TRACE_BOUNDS").is_ok() {
                eprintln!(
                    "  -> [{domain}] lower {:?} upper {:?} (passes {}, seeded {})",
                    out.result.lower.as_ref().map(|e| e.to_string()),
                    out.result.upper.as_ref().map(|e| e.to_string()),
                    out.top_passes,
                    out.seeded,
                );
            }
            // Per-thread diff: only overflows absorbed while computing
            // *this* trail's bounds (on this worker) justify a retry.
            let overflowed = budget::local_overflow_events() > overflow_before
                || blazer_domains::rational::take_overflow();
            if let Some(coarser) = domain.coarser() {
                let reason = match budget::exhausted() {
                    // The deadline cannot be extended; other caps (fixpoint
                    // passes, refinement steps) are global pacing knobs that
                    // a coarser domain would exhaust just the same.
                    Some(Resource::LpCalls) if budget::grant_lp_rescue(LP_RESCUE) => {
                        Some(DegradeReason::LpBudget)
                    }
                    Some(_) => None,
                    None if overflowed => Some(DegradeReason::Overflow),
                    None => None,
                };
                if let Some(reason) = reason {
                    budget::note_degradation(format!(
                        "driver: trail {node}: retrying {domain} -> {coarser} ({})",
                        Degradation { node, from: domain, to: coarser, reason }.reason
                    ));
                    degradations.push(Degradation { node, from: domain, to: coarser, reason });
                    domain = coarser;
                    continue;
                }
            }
            if overflowed {
                // No retry available: either no coarser domain is left to
                // absorb the overflow, or the budget is exhausted beyond
                // rescue. Either way the computed bounds cannot be trusted
                // (saturation can even collapse them to a narrow point).
                budget::note_overflow();
                let why = if domain.coarser().is_none() {
                    "overflow in the coarsest domain"
                } else {
                    "overflow under an exhausted budget"
                };
                budget::note_degradation(format!(
                    "driver: trail {node}: {why}; widening bounds to [0, ∞)"
                ));
                break BoundResult { lower: Some(blazer_bounds::CostExpr::zero()), upper: None };
            }
            // Clean completion of this rung. Post-states are only retained
            // when the budget never ran dry: an exhausted engine widens
            // states toward ⊤, and a ⊤-ish seed would poison every child.
            if want_post && budget::exhausted().is_none() {
                post = out.post.take();
            }
            if out.seeded && self.check_seeds_enabled() {
                let mut baseline = run_domain(domain, None, want_post);
                // The re-run's own saturation must not leak into the outer
                // overflow bookkeeping.
                blazer_domains::rational::take_overflow();
                if baseline.result != out.result {
                    if std::env::var("BLAZER_ASSERT_SEEDS")
                        .is_ok_and(|v| !v.trim().is_empty() && v.trim() != "0")
                    {
                        panic!(
                            "seeded fixpoint diverged from the from-⊥ baseline \
                             for trail {node} in {domain}"
                        );
                    }
                    budget::note_degradation(format!(
                        "driver: trail {node}: seeded fixpoint diverged from the \
                         from-⊥ baseline in {domain}; discarding the seeded result"
                    ));
                    seed_rejected = true;
                    post = baseline.post.take();
                    break baseline.result;
                }
            }
            break out.result;
        };
        if outer_overflow {
            blazer_domains::rational::set_overflow();
        }
        EvalOut { result, degradations, post, seeded, seed_rejected, top_passes }
    }

    /// Whether seeded fixpoints are cross-checked against a from-⊥ rerun.
    ///
    /// On by default in debug builds; `BLAZER_CHECK_SEEDS=1` forces it on
    /// elsewhere and `BLAZER_CHECK_SEEDS=0` forces it off (e.g. for tests
    /// that A/B seeded vs unseeded outcomes themselves and don't need every
    /// trail double-run). Never runs under a finite budget or fault
    /// injection, where the extra baseline run would consume shared
    /// resources and change the very behavior under test.
    fn check_seeds_enabled(&self) -> bool {
        let requested = match std::env::var("BLAZER_CHECK_SEEDS") {
            Ok(v) => !v.trim().is_empty() && v.trim() != "0",
            Err(_) => cfg!(debug_assertions),
        };
        requested
            && self.config.budget.is_unlimited()
            && !self.config.use_ambient_budget
            && std::env::var("BLAZER_FAULT").is_err()
    }
}

/// Whether the tree separation between `a` and `b` is a secret split: the
/// children of their lowest common ancestor along the two paths carry
/// [`SplitKind::Secret`]. Pairs separated only by taint splits have
/// different low inputs, so differing bounds prove nothing.
fn sec_separated(tree: &TrailTree, a: usize, b: usize) -> bool {
    let path_to_root = |mut n: usize| {
        let mut path = vec![n];
        while let Some(p) = tree.node(n).parent {
            path.push(p);
            n = p;
        }
        path
    };
    let pa = path_to_root(a);
    let pb = path_to_root(b);
    // Find the LCA: deepest node common to both paths.
    let set_b: std::collections::BTreeSet<usize> = pb.iter().copied().collect();
    let Some(lca_pos) = pa.iter().position(|n| set_b.contains(n)) else {
        return false;
    };
    if lca_pos == 0 {
        return false; // one is an ancestor of the other: not a separation
    }
    // The child of the LCA on a's path records the split kind.
    let child_on_a = pa[lca_pos - 1];
    tree.node(child_on_a).split_kind == Some(SplitKind::Secret)
}

/// CHECKATTACK on one pair: observably different bound ranges.
fn check_attack_pair(
    observer: &Observer,
    tree: &TrailTree,
    a: usize,
    b: usize,
) -> Option<AttackSpec> {
    let ba = tree.node(a).bounds.clone()?;
    let bb = tree.node(b).bounds.clone()?;
    let (lo_a, lo_b) = (ba.lower.clone()?, bb.lower.clone()?);
    if observer.observably_different((&lo_a, ba.upper.as_ref()), (&lo_b, bb.upper.as_ref())) {
        Some(AttackSpec {
            node_a: a,
            node_b: b,
            trail_a: tree.node(a).trail.clone(),
            trail_b: tree.node(b).trail.clone(),
            bounds_a: (lo_a, ba.upper),
            bounds_b: (lo_b, bb.upper),
        })
    } else {
        None
    }
}

/// CHECKSAFE's per-component judgment.
fn judge(b: &BoundResult, observer: &Observer, high_seeds: &BTreeSet<usize>) -> NodeStatus {
    match (&b.lower, &b.upper) {
        (None, _) => NodeStatus::Empty,
        (Some(lo), Some(hi)) if observer.is_narrow(lo, hi, high_seeds) => NodeStatus::Narrow,
        _ => NodeStatus::Wide,
    }
}

/// Whether secret data can influence running time at all: a high-tainted
/// branch, or a value-dependent call cost fed by high data.
fn has_secret_influence(f: &Function, taint: &blazer_taint::TaintReport) -> bool {
    if taint.any_high_branch() {
        return true;
    }
    for (bid, block) in f.iter_blocks() {
        for inst in &block.insts {
            if let Inst::Call { args, cost: CallCost::Linear { arg, .. }, .. } = inst {
                if let Some(op) = args.get(*arg) {
                    if let Some(v) = op.as_var() {
                        if taint.var_taint_at_exit(bid, v).any().is_high() {
                            return true;
                        }
                    }
                }
            }
        }
    }
    false
}

/// The tainted-branch symbol table feeding trail annotation.
fn branch_syms(
    f: &Function,
    alphabet: &EdgeAlphabet,
    taint: &blazer_taint::TaintReport,
) -> Vec<BranchSyms> {
    let mut out = Vec::new();
    for (bid, block) in f.iter_blocks() {
        let Terminator::Branch { then_bb, else_bb, .. } = &block.term else {
            continue;
        };
        if then_bb == else_bb {
            continue;
        }
        let Some(taint_val) = taint.branch_taint(bid) else { continue };
        let from = NodeId::block(bid);
        out.push(BranchSyms {
            then_sym: alphabet.sym(blazer_ir::Edge::new(from, NodeId::block(*then_bb))),
            else_sym: alphabet.sym(blazer_ir::Edge::new(from, NodeId::block(*else_bb))),
            taint: taint_val,
        });
    }
    out
}

/// Convenience: search for a concrete witness pair for an outcome's attack
/// specification (None for non-attack verdicts or when the search fails).
/// Witness costs are measured under the outcome's own cost model, so the
/// concrete stopwatch agrees with the symbolic bounds that claimed the
/// attack.
pub fn concretize_outcome(
    program: &Program,
    outcome: &AnalysisOutcome,
    attempts: u32,
) -> Option<(Vec<Value>, Vec<Value>)> {
    let Verdict::Attack(spec) = &outcome.verdict else { return None };
    crate::attack::concretize(
        program,
        &outcome.function,
        Some(spec),
        &outcome.cost_model,
        0,
        attempts,
        0xB1A2,
    )
    .map(|w| (w.inputs_a, w.inputs_b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazer_lang::compile;

    fn analyze(src: &str, func: &str, config: Config) -> AnalysisOutcome {
        let p = compile(src).unwrap();
        Blazer::new(config).analyze(&p, func).unwrap()
    }

    #[test]
    fn outcome_records_the_configured_cost_model() {
        // Every consumer (attack concretization, reports, the serve layer)
        // reads the model from the outcome, so the driver must thread the
        // one Config source through rather than re-defaulting to unit.
        let src = "fn f(h: int #high) { if (h > 0) { tick(2); } else { tick(2); } }";
        let weighted = blazer_ir::cost::CostModel::weighted();
        let out = analyze(src, "f", Config::microbench().with_cost_model(weighted.clone()));
        assert_eq!(out.cost_model, weighted);
        let out = analyze(src, "f", Config::microbench());
        assert_eq!(out.cost_model, blazer_ir::cost::CostModel::unit());
    }

    #[test]
    fn example1_safe_with_single_component() {
        // Sec. 2 Example 1: balanced high branch, one partition suffices.
        let src = "fn foo(high: int #high, low: int) { \
            if (high == 0) { \
                let i: int = 0; \
                while (i < low) { i = i + 1; } \
            } else { \
                let i: int = low; \
                while (i > 0) { i = i - 1; } \
            } \
        }";
        let out = analyze(src, "foo", Config::microbench());
        assert!(out.verdict.is_safe(), "{}", out.render_tree(&compile(src).unwrap()));
    }

    #[test]
    fn example2_needs_low_split() {
        // Sec. 2 Example 2: split at low > 0.
        let src = "fn bar(high: int #high, low: int) { \
            if (low > 0) { \
                let i: int = 0; \
                while (i < low) { i = i + 1; } \
                while (i > 0) { i = i - 1; } \
            } else { \
                if (high == 0) { let i: int = 5; i = i; } else { let i: int = 0; i = i + 1; } \
            } \
        }";
        let out = analyze(src, "bar", Config::microbench());
        assert!(out.verdict.is_safe());
        assert!(out.tree.len() >= 3, "a taint split must have happened");
    }

    #[test]
    fn nosecret_fast_path() {
        let src = "fn f(low: int) { let i: int = 0; while (i < low) { i = i + 1; } }";
        let out = analyze(src, "f", Config::microbench());
        assert!(out.verdict.is_safe());
        assert_eq!(out.tree.len(), 1);
        assert!(out.attack_time.is_none());
    }

    #[test]
    fn unbalanced_high_branch_yields_attack() {
        let src = "fn f(high: int #high, low: int) { \
            if (high == 0) { tick(1); } else { \
                let i: int = 0; \
                while (i < low) { i = i + 1; } \
            } \
        }";
        let out = analyze(src, "f", Config::microbench());
        assert!(out.verdict.is_attack(), "verdict: {}", out.verdict);
        assert!(out.attack_time.is_some());
        // The attack spec names two distinct sibling trails.
        let Verdict::Attack(spec) = &out.verdict else { unreachable!() };
        assert_ne!(spec.node_a, spec.node_b);
    }

    #[test]
    fn attack_concretizes_to_witness_inputs() {
        let src = "fn f(high: int #high, low: int) { \
            if (high == 0) { tick(1); } else { \
                let i: int = 0; \
                while (i < 30) { i = i + 1; } \
            } \
        }";
        let p = compile(src).unwrap();
        let out = Blazer::new(Config::microbench()).analyze(&p, "f").unwrap();
        assert!(out.verdict.is_attack());
        let (a, b) = concretize_outcome(&p, &out, 300).expect("witness exists");
        assert_eq!(a[1], b[1], "low inputs agree");
    }

    #[test]
    fn secret_dependent_loop_bound_is_safe_when_tight() {
        // loopAndBranch-style: running time is an exact function of high,
        // so lower == upper and the width is secret-independent.
        let src = "fn f(high: int #high, low: int) { \
            if (low < 0) { \
                let i: int = high; \
                while (i > 0) { i = i - 1; } \
            } else { \
                let j: int = high; \
                while (j > 0) { j = j - 1; } \
            } \
        }";
        let out = analyze(src, "f", Config::microbench());
        assert!(
            out.verdict.is_safe(),
            "tight secret-dependent bounds are narrow:\n{}",
            analyze(src, "f", Config::microbench())
                .tree
                .render(&|lo, hi| format!("[{lo}, {:?}]", hi.map(|h| h.to_string())))
        );
    }

    #[test]
    fn sec7_ex2_compensating_branches_safe() {
        // Related-work ex2: both branches on high cost the same.
        let src = "fn f(h: int #high, x: int) { \
            if (h > x) { tick(1); } else { tick(1); } \
            if (h <= x) { tick(1); } else { tick(1); } \
        }";
        let out = analyze(src, "f", Config::microbench());
        assert!(out.verdict.is_safe());
    }

    #[test]
    fn sec7_ex1_dead_high_loop_safe() {
        // Related-work ex1: `if false { while (h < x) h++ }`.
        let src = "fn f(x: int, h: int #high) { \
            let c: int = 0; \
            if (c == 1) { \
                while (h < x) { h = h + 1; } \
            } \
        }";
        let out = analyze(src, "f", Config::microbench());
        assert!(out.verdict.is_safe());
    }

    #[test]
    fn unknown_function_errors() {
        let p = compile("fn f() { }").unwrap();
        let e = Blazer::new(Config::microbench()).analyze(&p, "g").unwrap_err();
        assert_eq!(e, CoreError::NoSuchFunction("g".into()));
    }

    #[test]
    fn disabled_attack_synthesis_returns_unknown() {
        let src = "fn f(high: int #high) { \
            if (high == 0) { tick(1); } else { tick(100); } \
        }";
        let mut config = Config::microbench();
        config.synthesize_attack = false;
        let out = analyze(src, "f", config);
        assert!(matches!(out.verdict, Verdict::Unknown(UnknownReason::AttackSynthesisDisabled)));
    }

    #[test]
    fn config_builders() {
        let c = Config::microbench()
            .with_domain(DomainKind::Zone)
            .with_max_trails(7)
            .with_observer(blazer_bounds::Observer::stac());
        assert_eq!(c.domain, DomainKind::Zone);
        assert_eq!(c.max_trails, 7);
        assert!(matches!(c.observer, blazer_bounds::Observer::ConcreteThreshold { .. }));
    }

    #[test]
    fn zone_domain_verdicts_on_simple_cases() {
        // The weaker zone domain still verifies difference-shaped cases.
        let src = "fn f(high: int #high, low: int) {             if (high == 0) {                 let i: int = 0;                 while (i < low) { i = i + 1; }             } else {                 let i: int = low;                 while (i > 0) { i = i - 1; }             }         }";
        let p = blazer_lang::compile(src).unwrap();
        let out = Blazer::new(Config::microbench().with_domain(DomainKind::Zone))
            .analyze(&p, "f")
            .unwrap();
        assert!(out.verdict.is_safe(), "{}", out.verdict);
    }

    #[test]
    fn outcome_rendering_names_variables() {
        let src = "fn f(guess: array, high: int #high) { \
            let i: int = 0; \
            while (i < len(guess)) { i = i + 1; } \
            if (high > 0) { tick(1); } else { tick(1); } \
        }";
        let p = compile(src).unwrap();
        let out = Blazer::new(Config::microbench()).analyze(&p, "f").unwrap();
        assert!(out.verdict.is_safe());
        let rendering = out.render_tree(&p);
        assert!(rendering.contains("guess.len"), "{rendering}");
    }
}
