//! A deliberately small HTTP/1.1 subset over `std::net` streams, shared
//! by the analysis service (`blazer-serve`) and the fleet router
//! (`blazer-route`).
//!
//! Bodies are delimited by `Content-Length` only (no chunked transfer,
//! no TLS), and connections are **persistent by default**: an HTTP/1.1
//! peer may send any number of requests — back to back, even pipelined —
//! on one socket, and the server answers them in order on the same
//! socket until either side says `Connection: close`, the per-connection
//! request cap is reached, or the peer goes idle past [`IO_TIMEOUT`].
//! That subset is what `curl`, the `blazer client` subcommand, and any
//! load balancer health check need — and nothing more, because the
//! workspace is std-only.
//!
//! Server-side reading is built on one long-lived `BufRead` per
//! connection (see [`read_request`]): pipelined bytes that arrive
//! buffered past a request boundary stay in the reader and become the
//! next request instead of being dropped with a transient `BufReader`.
//! The client side of the same wire format lives here too
//! ([`format_request`], [`read_response`]), so the service's client, the
//! router's backend connections, and the tests all frame requests and
//! responses identically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::{BufRead, Read, Write};
use std::time::Duration;

/// Per-connection socket read/write timeout: a stalled or malicious peer
/// must never pin a worker forever. Between requests the same timeout
/// doubles as the keep-alive idle cap — a connection with no next request
/// within it is closed.
pub const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// Maximum bytes of request head (request line plus headers, terminators
/// included) read per request. A peer streaming an endless header line
/// is answered `431` after this many bytes instead of growing a worker's
/// line buffer without bound until the socket timeout.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Maximum number of header lines per request (`431` beyond).
pub const MAX_HEADERS: usize = 100;

/// Default cap on requests served per connection before the server closes
/// it (resource hygiene: a connection can't pin a worker forever).
pub const DEFAULT_MAX_REQUESTS_PER_CONNECTION: u64 = 1000;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// The request target, query string included.
    pub path: String,
    /// Body bytes (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the peer asked for the connection to be closed after this
    /// response: an explicit `Connection: close`, or an HTTP/1.0 request
    /// without `Connection: keep-alive`.
    pub close: bool,
}

/// A request-reading failure that should be answered with the given HTTP
/// status, after which the connection must be closed (the stream position
/// is undefined once framing has failed).
#[derive(Debug)]
pub struct HttpError {
    /// Status code to answer with.
    pub status: u16,
    /// Human-readable reason for the JSON error body.
    pub message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> Self {
        HttpError { status, message: message.into() }
    }
}

/// Why [`read_request`] produced no request.
#[derive(Debug)]
pub enum ReadError {
    /// The peer hung up (or went idle past the timeout) cleanly *between*
    /// requests: close the connection without writing anything.
    Closed,
    /// A malformed, oversized, or truncated request: answer with the
    /// error's status, then close.
    Bad(HttpError),
}

impl From<HttpError> for ReadError {
    fn from(e: HttpError) -> ReadError {
        ReadError::Bad(e)
    }
}

/// Reads one CRLF-terminated head line, charging its bytes against the
/// remaining head budget. `at_boundary` is true while zero bytes of the
/// current request have been consumed — EOF or an idle timeout there is a
/// clean [`ReadError::Closed`], anywhere else a `400`/`408`.
fn read_head_line<R: BufRead>(
    reader: &mut R,
    budget: &mut usize,
    at_boundary: bool,
) -> Result<String, ReadError> {
    let mut line = String::new();
    // `take` bounds how much one line may consume: when the limit is hit
    // without a newline the line is over budget (431), and nothing past
    // the limit has been pulled out of the reader.
    let limit = *budget as u64;
    let n = Read::take(&mut *reader, limit).read_line(&mut line).map_err(|e| {
        use std::io::ErrorKind;
        match e.kind() {
            ErrorKind::TimedOut | ErrorKind::WouldBlock => {
                if at_boundary && line.is_empty() {
                    ReadError::Closed
                } else {
                    ReadError::Bad(HttpError::new(408, "timed out reading request head"))
                }
            }
            _ if at_boundary && line.is_empty() => ReadError::Closed,
            _ => ReadError::Bad(HttpError::new(400, format!("could not read request head: {e}"))),
        }
    })?;
    *budget -= n;
    if n == 0 && at_boundary {
        return Err(ReadError::Closed);
    }
    if !line.ends_with('\n') {
        if n as u64 == limit {
            return Err(HttpError::new(
                431,
                format!("request head exceeds the {MAX_HEAD_BYTES}-byte limit"),
            )
            .into());
        }
        return Err(HttpError::new(400, "connection closed mid-request head").into());
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Reads and parses one request from a connection's persistent reader,
/// enforcing `max_body` bytes on the declared `Content-Length` plus the
/// [`MAX_HEAD_BYTES`]/[`MAX_HEADERS`] head bounds.
///
/// The reader must live as long as the connection: pipelined bytes
/// buffered past this request's end are the start of the next one.
pub fn read_request<R: BufRead>(reader: &mut R, max_body: usize) -> Result<Request, ReadError> {
    let mut head_budget = MAX_HEAD_BYTES;
    let line = read_head_line(reader, &mut head_budget, true)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    if method.is_empty() || path.is_empty() {
        return Err(HttpError::new(400, "malformed request line").into());
    }
    // HTTP/1.1 connections persist unless told otherwise; HTTP/1.0 (and
    // version-less) peers don't understand keep-alive unless they ask.
    let http11 = parts.next().is_none_or(|v| v.eq_ignore_ascii_case("HTTP/1.1"));
    let mut close = !http11;
    let mut content_length: Option<usize> = None;
    let mut headers = 0usize;
    loop {
        let header = read_head_line(reader, &mut head_budget, false)?;
        if header.is_empty() {
            break;
        }
        headers += 1;
        if headers > MAX_HEADERS {
            return Err(HttpError::new(431, format!("more than {MAX_HEADERS} headers")).into());
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                // A negative or u64-overflowing length fails the `usize`
                // parse (400) rather than wrapping into a small allocation;
                // the 413 below then runs *before* the body buffer is
                // allocated, so a hostile length never reserves memory.
                let parsed: usize = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::new(400, "unparsable Content-Length"))?;
                if content_length.replace(parsed).is_some_and(|prev| prev != parsed) {
                    // RFC 9110 §8.6: conflicting lengths are a smuggling
                    // vector; refuse rather than guess which one delimits.
                    return Err(HttpError::new(400, "conflicting Content-Length headers").into());
                }
            } else if name.eq_ignore_ascii_case("connection") {
                for token in value.split(',') {
                    let token = token.trim();
                    if token.eq_ignore_ascii_case("close") {
                        close = true;
                    } else if token.eq_ignore_ascii_case("keep-alive") {
                        close = false;
                    }
                }
            }
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > max_body {
        return Err(HttpError::new(
            413,
            format!("body of {content_length} bytes exceeds the {max_body}-byte limit"),
        )
        .into());
    }
    let mut body = vec![0u8; content_length];
    std::io::Read::read_exact(reader, &mut body).map_err(|e| {
        use std::io::ErrorKind;
        match e.kind() {
            ErrorKind::TimedOut | ErrorKind::WouldBlock => {
                HttpError::new(408, "timed out reading request body")
            }
            _ => HttpError::new(400, format!("body shorter than Content-Length: {e}")),
        }
    })?;
    Ok(Request { method, path, body, close })
}

/// The standard reason phrase for the status codes this service emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one JSON response, announcing `Connection: keep-alive` or
/// `Connection: close` per `close`. Write errors are ignored: the peer may
/// have hung up, and the server has nothing better to do than move on.
pub fn write_json_response<W: Write>(writer: &mut W, status: u16, body: &str, close: bool) {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        reason(status),
        body.len(),
        if close { "close" } else { "keep-alive" },
    );
    let _ = writer.write_all(head.as_bytes()).and_then(|()| writer.write_all(body.as_bytes()));
    let _ = writer.flush();
}

// ------------------------------------------------------------ client side

fn bad_data(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// Formats one request head + body. `close` picks the `Connection` token.
pub fn format_request(method: &str, path: &str, host: &str, body: &str, close: bool) -> String {
    format!(
        "{method} {path} HTTP/1.1\r\nHost: {host}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: {}\r\n\r\n{body}",
        body.len(),
        if close { "close" } else { "keep-alive" },
    )
}

/// Reads one `Content-Length`-framed response from a persistent reader.
/// Returns `(status, body, server_closes)` — the last flag reports the
/// server's `Connection: close`, after which no further response will
/// arrive on this connection.
///
/// A peer that hangs up *before sending any response byte* fails with
/// [`std::io::ErrorKind::ConnectionAborted`]: the request died at a
/// connection boundary (a keep-alive peer closed between requests, or a
/// backend was restarted), which a caller holding the request bytes may
/// safely retry on a fresh connection. Every other framing failure is
/// `InvalidData` and must not be retried blindly.
pub fn read_response<R: BufRead>(reader: &mut R) -> std::io::Result<(u16, String, bool)> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::ConnectionAborted,
            "connection closed before any response byte",
        ));
    }
    let status: u16 = line
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| bad_data(format!("malformed status line: {line:.60}")))?;
    let mut content_length: Option<usize> = None;
    let mut closes = false;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(bad_data("connection closed mid-response-headers"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            } else if name.eq_ignore_ascii_case("connection") {
                closes = value.split(',').any(|t| t.trim().eq_ignore_ascii_case("close"));
            }
        }
    }
    let length =
        content_length.ok_or_else(|| bad_data("response without Content-Length framing"))?;
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body).map_err(|_| bad_data("response body is not UTF-8"))?;
    Ok((status, body, closes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse_one(raw: &[u8], max_body: usize) -> Result<Request, ReadError> {
        read_request(&mut Cursor::new(raw.to_vec()), max_body)
    }

    fn err_status(result: Result<Request, ReadError>) -> u16 {
        match result.unwrap_err() {
            ReadError::Bad(e) => e.status,
            ReadError::Closed => panic!("expected an HTTP error, got a clean close"),
        }
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            parse_one(b"POST /analyze HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd", 1024)
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/analyze");
        assert_eq!(req.body, b"abcd");
        assert!(!req.close, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn connection_negotiation() {
        let close = parse_one(b"GET /health HTTP/1.1\r\nConnection: close\r\n\r\n", 0).unwrap();
        assert!(close.close);
        let old = parse_one(b"GET /health HTTP/1.0\r\n\r\n", 0).unwrap();
        assert!(old.close, "HTTP/1.0 defaults to close");
        let old_ka =
            parse_one(b"GET /health HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n", 0).unwrap();
        assert!(!old_ka.close, "an HTTP/1.0 peer may opt into keep-alive");
        let multi = parse_one(b"GET / HTTP/1.1\r\nConnection: foo, Close\r\n\r\n", 0).unwrap();
        assert!(multi.close, "close token found in a token list, any case");
    }

    #[test]
    fn pipelined_requests_parse_back_to_back_from_one_reader() {
        let mut reader = Cursor::new(
            b"POST /analyze HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi\
              GET /health HTTP/1.1\r\n\r\n\
              GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n"
                .to_vec(),
        );
        let first = read_request(&mut reader, 1024).unwrap();
        assert_eq!((first.method.as_str(), first.path.as_str()), ("POST", "/analyze"));
        assert_eq!(first.body, b"hi");
        let second = read_request(&mut reader, 1024).unwrap();
        assert_eq!(second.path, "/health");
        assert!(!second.close);
        let third = read_request(&mut reader, 1024).unwrap();
        assert_eq!(third.path, "/stats");
        assert!(third.close);
        // A clean end-of-stream at a request boundary is a close, not an
        // error.
        assert!(matches!(read_request(&mut reader, 1024), Err(ReadError::Closed)));
    }

    #[test]
    fn rejects_oversized_and_truncated_bodies() {
        let over = err_status(parse_one(b"POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\n", 10));
        assert_eq!(over, 413);
        let short = err_status(parse_one(b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\nab", 1024));
        assert_eq!(short, 400);
        let garbage = err_status(parse_one(b"\r\n", 1024));
        assert_eq!(garbage, 400);
    }

    #[test]
    fn accepts_zero_length_post() {
        let req = parse_one(b"POST /analyze HTTP/1.1\r\nContent-Length: 0\r\n\r\n", 1024).unwrap();
        assert_eq!(req.method, "POST");
        assert!(req.body.is_empty());
        // No Content-Length at all reads the same as an explicit zero.
        let req = parse_one(b"POST /analyze HTTP/1.1\r\nHost: x\r\n\r\n", 1024).unwrap();
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_negative_and_overflowing_content_length() {
        // A negative length must be a parse failure (400), not a wrap into
        // a huge or zero allocation.
        let neg = err_status(parse_one(b"POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n", 1024));
        assert_eq!(neg, 400);
        // One past u64::MAX (and u64::MAX itself, which can't fit a body
        // limit anyway): the usize parse overflows → 400, and nothing is
        // allocated on either path.
        let wrap = err_status(parse_one(
            b"POST / HTTP/1.1\r\nContent-Length: 18446744073709551616\r\n\r\n",
            1024,
        ));
        assert_eq!(wrap, 400);
        // A huge-but-parsable length is bounced by the limit check (413)
        // before the body buffer is allocated.
        let huge = err_status(parse_one(
            b"POST / HTTP/1.1\r\nContent-Length: 9223372036854775807\r\n\r\n",
            1024,
        ));
        assert_eq!(huge, 413);
        let junk =
            err_status(parse_one(b"POST / HTTP/1.1\r\nContent-Length: 4x\r\n\r\nabcd", 1024));
        assert_eq!(junk, 400);
    }

    #[test]
    fn rejects_conflicting_content_lengths() {
        let smuggle = err_status(parse_one(
            b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 2\r\n\r\nabcd",
            1024,
        ));
        assert_eq!(smuggle, 400);
        // Agreeing duplicates are harmless and accepted.
        let agree = parse_one(
            b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nabcd",
            1024,
        )
        .unwrap();
        assert_eq!(agree.body, b"abcd");
    }

    #[test]
    fn caps_the_request_head() {
        // One endless header line: bounced at the head budget with 431,
        // never accumulated past MAX_HEAD_BYTES.
        let mut raw = b"GET /health HTTP/1.1\r\nX-Junk: ".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 10));
        assert_eq!(err_status(parse_one(&raw, 1024)), 431);
        // Likewise an endless *request line*.
        let mut raw = b"GET /".to_vec();
        raw.extend(std::iter::repeat_n(b'x', MAX_HEAD_BYTES + 10));
        assert_eq!(err_status(parse_one(&raw, 1024)), 431);
        // Too many individually-small headers.
        let mut raw = b"GET /health HTTP/1.1\r\n".to_vec();
        for i in 0..=MAX_HEADERS {
            raw.extend(format!("X-{i}: v\r\n").into_bytes());
        }
        raw.extend(b"\r\n");
        assert_eq!(err_status(parse_one(&raw, 1024)), 431);
        // A head just under every bound still parses.
        let mut raw = b"GET /health HTTP/1.1\r\n".to_vec();
        for i in 0..MAX_HEADERS {
            raw.extend(format!("X-{i}: v\r\n").into_bytes());
        }
        raw.extend(b"\r\n");
        assert!(parse_one(&raw, 1024).is_ok());
    }

    #[test]
    fn eof_mid_head_is_an_error_not_a_clean_close() {
        assert_eq!(err_status(parse_one(b"GET /health HTTP/1.1\r\nHost", 1024)), 400);
        assert_eq!(err_status(parse_one(b"GET /health HT", 1024)), 400);
        assert!(matches!(parse_one(b"", 1024), Err(ReadError::Closed)));
    }

    #[test]
    fn response_roundtrips_through_format_and_read() {
        let mut wire = Vec::new();
        write_json_response(&mut wire, 200, "{\"ok\": true}", false);
        write_json_response(&mut wire, 503, "{\"ok\": false}", true);
        let mut reader = Cursor::new(wire);
        let (status, body, closes) = read_response(&mut reader).unwrap();
        assert_eq!((status, body.as_str(), closes), (200, "{\"ok\": true}", false));
        let (status, body, closes) = read_response(&mut reader).unwrap();
        assert_eq!((status, body.as_str(), closes), (503, "{\"ok\": false}", true));
    }

    #[test]
    fn response_eof_at_boundary_is_connection_aborted() {
        // Nothing at all: the boundary case a keep-alive caller may retry.
        let err = read_response(&mut Cursor::new(Vec::<u8>::new())).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionAborted);
        // A torn status line is NOT retry-safe: bytes were consumed.
        let err = read_response(&mut Cursor::new(b"HTTP/1.1 20".to_vec())).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // EOF mid-headers is likewise data corruption, not a clean close.
        let err = read_response(&mut Cursor::new(b"HTTP/1.1 200 OK\r\nConn".to_vec())).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
