//! End-to-end tests of BOUNDANALYSIS on whole functions, cross-validated
//! against the concrete interpreter.

use blazer_absint::transfer::entry_state;
use blazer_absint::{DimMap, ProductGraph};
use blazer_bounds::{graph_bounds, BoundResult};
use blazer_domains::{Polyhedron, Rat};
use blazer_interp::{Interp, SeededOracle, Value};
use blazer_ir::cost::CostModel;
use blazer_ir::{Cfg, Program};
use blazer_lang::compile;
use std::collections::BTreeSet;

fn bounds_of(src: &str, func: &str) -> (Program, DimMap, BoundResult) {
    let p = compile(src).unwrap();
    let f = p.function(func).unwrap();
    let cfg = Cfg::new(f);
    let dims = DimMap::new(f);
    let g = ProductGraph::full(f, &cfg);
    let init: Polyhedron = entry_state(f, &dims);
    let seeds: BTreeSet<usize> = dims.seeds().collect();
    let b = graph_bounds(&p, f, &dims, &g, &init, &CostModel::unit(), &seeds);
    (p, dims, b)
}

/// Evaluates a bound at concrete integer seed values, rounding up (bounds
/// may be fractional, e.g. after division transfers).
fn at(e: &blazer_bounds::CostExpr, dims: &DimMap, vals: &[i64]) -> i64 {
    let v = e.eval(&|d| {
        let idx = d.checked_sub(dims.n_vars()).expect("bounds mention seeds only");
        Rat::int(vals[idx] as i128)
    });
    v.ceil() as i64
}

#[test]
fn straightline_exact() {
    let (p, dims, b) =
        bounds_of("fn f(x: int) -> int { let y: int = x + 1; let z: int = y * 2; return z; }", "f");
    let lo = b.lower.expect("reachable");
    let hi = b.upper.expect("bounded");
    assert_eq!(at(&lo, &dims, &[5]), 3);
    assert_eq!(at(&hi, &dims, &[5]), 3);
    let t = Interp::new(&p).run("f", &[Value::Int(5)], &mut SeededOracle::new(0)).unwrap();
    assert_eq!(t.cost, 3);
}

#[test]
fn counting_loop_tight_and_matches_interpreter() {
    let src = "fn f(n: int) { let i: int = 0; while (i < n) { i = i + 1; } }";
    let (p, dims, b) = bounds_of(src, "f");
    let lo = b.lower.expect("reachable");
    let hi = b.upper.expect("bounded");
    for n in [0i64, 1, 5, 23] {
        let t = Interp::new(&p).run("f", &[Value::Int(n)], &mut SeededOracle::new(0)).unwrap();
        let lo_v = at(&lo, &dims, &[n]);
        let hi_v = at(&hi, &dims, &[n]);
        assert!(
            lo_v as u64 <= t.cost && t.cost <= hi_v as u64,
            "n={n}: cost {} outside [{lo_v}, {hi_v}]",
            t.cost
        );
        // This loop is deterministic: bounds must be tight.
        assert_eq!(lo_v, hi_v, "n={n}");
    }
}

#[test]
fn branch_produces_min_max_range() {
    let src = "fn f(c: int) { if (c > 0) { tick(10); } else { tick(3); } }";
    let (p, dims, b) = bounds_of(src, "f");
    let lo = b.lower.expect("reachable");
    let hi = b.upper.expect("bounded");
    let lo_v = at(&lo, &dims, &[0]);
    let hi_v = at(&hi, &dims, &[0]);
    // tick(3)+branch+return vs tick(10)+branch+return.
    assert_eq!(lo_v, 5);
    assert_eq!(hi_v, 12);
    for c in [-3i64, 0, 7] {
        let t = Interp::new(&p).run("f", &[Value::Int(c)], &mut SeededOracle::new(0)).unwrap();
        assert!((lo_v as u64..=hi_v as u64).contains(&t.cost));
    }
}

#[test]
fn infeasible_branch_excluded_from_bounds() {
    // The expensive branch is dead: bounds must ignore it.
    let src = "fn f() { let x: int = 1; if (x > 5) { tick(1000); } else { tick(1); } }";
    let (_, dims, b) = bounds_of(src, "f");
    let hi = b.upper.expect("bounded");
    assert!(at(&hi, &dims, &[]) < 100);
}

#[test]
fn loop_over_array_length() {
    let src = "fn f(a: array) { let i: int = 0; while (i < len(a)) { i = i + 1; } }";
    let (p, dims, b) = bounds_of(src, "f");
    let lo = b.lower.expect("reachable");
    let hi = b.upper.expect("bounded");
    for n in [0usize, 4, 9] {
        let t = Interp::new(&p)
            .run("f", &[Value::array(vec![0; n])], &mut SeededOracle::new(0))
            .unwrap();
        let lo_v = at(&lo, &dims, &[n as i64]);
        let hi_v = at(&hi, &dims, &[n as i64]);
        assert!(lo_v as u64 <= t.cost && t.cost <= hi_v as u64, "n={n}");
        assert_eq!(lo_v, hi_v);
    }
}

#[test]
fn high_branch_inside_loop_widens_range_only_by_body_difference() {
    let src = "fn f(h: int #high, n: int) { \
        let i: int = 0; \
        while (i < n) { \
            if (h > 0) { tick(5); } else { tick(2); } \
            i = i + 1; \
        } \
    }";
    let (p, dims, b) = bounds_of(src, "f");
    let lo = b.lower.expect("reachable");
    let hi = b.upper.expect("bounded");
    for (h, n) in [(1i64, 4i64), (-1, 4), (0, 0), (5, 9)] {
        let t = Interp::new(&p)
            .run("f", &[Value::Int(h), Value::Int(n)], &mut SeededOracle::new(0))
            .unwrap();
        let lo_v = at(&lo, &dims, &[h, n]);
        let hi_v = at(&hi, &dims, &[h, n]);
        assert!(
            lo_v as u64 <= t.cost && t.cost <= hi_v as u64,
            "h={h} n={n}: {} ∉ [{lo_v}, {hi_v}]",
            t.cost
        );
    }
    // The range width is linear in n (3 per iteration), independent of h.
    let diff = hi.sub(&lo);
    let high_seed = dims.seed(0);
    assert!(!diff.dims().contains(&high_seed), "width must not depend on the secret: {diff}");
}

#[test]
fn early_return_loop_has_constant_lower_bound() {
    // Tenex-style early exit: lower bound constant, upper linear.
    let src = "fn f(pw: array #high, guess: array) -> bool { \
        let i: int = 0; \
        while (i < len(guess)) { \
            if (i >= len(pw)) { return false; } \
            i = i + 1; \
        } \
        return true; \
    }";
    let (_, dims, b) = bounds_of(src, "f");
    let lo = b.lower.expect("reachable");
    let hi = b.upper.expect("bounded");
    // Lower bound ignores the loop (early exit possible): degree 0.
    assert_eq!(lo.degree(), 0);
    // Upper bound grows with guess length: degree 1.
    assert_eq!(hi.degree(), 1);
    let _ = dims;
}

#[test]
fn nested_loops_quadratic_upper() {
    let src = "fn f(n: int) { \
        let i: int = 0; \
        while (i < n) { \
            let j: int = 0; \
            while (j < n) { j = j + 1; } \
            i = i + 1; \
        } \
    }";
    let (p, dims, b) = bounds_of(src, "f");
    let lo = b.lower.expect("reachable");
    let hi = b.upper.expect("bounded");
    assert_eq!(hi.degree(), 2, "upper must be quadratic: {hi}");
    for n in [0i64, 1, 3, 6] {
        let t = Interp::new(&p).run("f", &[Value::Int(n)], &mut SeededOracle::new(0)).unwrap();
        let lo_v = at(&lo, &dims, &[n]);
        let hi_v = at(&hi, &dims, &[n]);
        assert!(
            lo_v as u64 <= t.cost && t.cost <= hi_v as u64,
            "n={n}: {} ∉ [{lo_v}, {hi_v}]",
            t.cost
        );
    }
}

#[test]
fn linear_call_cost_becomes_symbolic() {
    let src = "extern fn hash(p: array) -> int cost 3 * arg0 + 7;\n\
               fn f(p: array) -> int { return hash(p); }";
    let (p, dims, b) = bounds_of(src, "f");
    let lo = b.lower.expect("reachable");
    let hi = b.upper.expect("bounded");
    assert_eq!(hi.degree(), 1);
    for n in [0usize, 10] {
        let t = Interp::new(&p)
            .run("f", &[Value::array(vec![0; n])], &mut SeededOracle::new(0))
            .unwrap();
        let lo_v = at(&lo, &dims, &[n as i64]);
        let hi_v = at(&hi, &dims, &[n as i64]);
        assert!(lo_v as u64 <= t.cost && t.cost <= hi_v as u64, "n={n}");
    }
}

#[test]
fn doubling_loop_gets_sound_linear_overapproximation() {
    // `i * 2` is linear (constant factor), so the counter lemma applies:
    // i grows by at least 1 per iteration once i ≥ 1, giving a sound
    // (if loose: linear instead of logarithmic) upper bound.
    let src = "fn f(n: int) { let i: int = 1; while (i < n) { i = i * 2; } }";
    let (p, dims, b) = bounds_of(src, "f");
    let hi = b.upper.expect("counter lemma applies to i*2");
    for n in [0i64, 1, 7, 30] {
        let t = Interp::new(&p).run("f", &[Value::Int(n)], &mut SeededOracle::new(0)).unwrap();
        assert!(t.cost <= at(&hi, &dims, &[n]) as u64, "n={n}");
    }
}

#[test]
fn nonlinear_loop_yields_unknown_upper() {
    // `i * i` cannot be linearized: no lemma applies, the tool reports
    // an unknown upper bound (this is how gpt14_unsafe "gives up").
    let src = "fn f(n: int) { let i: int = 2; while (i < n) { i = i * i; } }";
    let (_, _, b) = bounds_of(src, "f");
    assert!(b.lower.is_some());
    assert!(b.upper.is_none(), "squaring loop is outside the lemma database");
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Soundness: the interpreter's measured cost always lies within
        /// the computed symbolic bounds.
        #[test]
        fn measured_cost_within_bounds(n in 0i64..40, h in -20i64..20) {
            let src = "fn f(h: int #high, n: int) { \
                let i: int = 0; \
                while (i < n) { \
                    if (h > i) { tick(4); } \
                    i = i + 1; \
                } \
                let j: int = h; \
                while (j > 0) { j = j - 1; } \
            }";
            let (p, dims, b) = bounds_of(src, "f");
            let lo = b.lower.expect("reachable");
            let hi = b.upper.expect("bounded");
            let t = Interp::new(&p)
                .run("f", &[Value::Int(h), Value::Int(n)], &mut SeededOracle::new(0))
                .unwrap();
            let lo_v = at(&lo, &dims, &[h, n]);
            let hi_v = at(&hi, &dims, &[h, n]);
            prop_assert!(lo_v >= 0);
            prop_assert!(
                lo_v as u64 <= t.cost && t.cost <= hi_v as u64,
                "h={h} n={n}: {} ∉ [{lo_v}, {hi_v}]", t.cost
            );
        }
    }
}

#[test]
fn halving_loop_gets_logarithmic_upper_bound() {
    // Binary-search-style halving: iterations ≈ log2(n).
    let src = "fn f(n: int) { let i: int = n; while (i > 1) { i = i / 2; } }";
    let (p, dims, b) = bounds_of(src, "f");
    let hi = b.upper.expect("halving lemma applies");
    // The bound is logarithmic: degree 0, mentions the seed, and grows
    // very slowly.
    assert_eq!(hi.degree(), 0, "{hi}");
    assert!(hi.dims().contains(&dims.seed(0)), "{hi}");
    for n in [0i64, 1, 2, 7, 64, 1000] {
        let t = Interp::new(&p).run("f", &[Value::Int(n)], &mut SeededOracle::new(0)).unwrap();
        let hi_v = at(&hi, &dims, &[n]);
        assert!(
            t.cost <= hi_v as u64,
            "n={n}: measured {} exceeds log bound {hi_v} ({hi})",
            t.cost
        );
        // And the bound is genuinely sublinear for large n.
        if n >= 64 {
            assert!(hi_v < n, "n={n}: log bound {hi_v} not sublinear");
        }
    }
}

#[test]
fn division_chains_stay_relational() {
    // quarter = n/4 computed via two halvings: upper bound must not be ∞
    // and the final loop count follows the quartered value.
    let src = "fn f(n: int) { \
        if (n < 0) { return; } \
        let h: int = n / 2; \
        let q: int = h / 2; \
        let i: int = 0; \
        while (i < q) { i = i + 1; } \
    }";
    let (p, dims, b) = bounds_of(src, "f");
    let hi = b.upper.expect("bounded");
    for n in [0i64, 5, 16, 33] {
        let t = Interp::new(&p).run("f", &[Value::Int(n)], &mut SeededOracle::new(0)).unwrap();
        let hi_v = at(&hi, &dims, &[n]);
        assert!(t.cost <= hi_v as u64, "n={n}: {} > {hi_v}", t.cost);
    }
    // The bound reflects n/4 iterations, not n.
    let at64 = at(&hi, &dims, &[64]);
    assert!(at64 < 3 * 64, "bound {at64} should be ~n/4 scaled: {hi}");
}
