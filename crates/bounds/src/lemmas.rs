//! The complexity-bound lemma database.
//!
//! "\[We\] match these invariants against a database of complexity bound
//! lemmas [Gulwani et al.]" (Sec. 5). The lemmas here are ranking-function
//! arguments for loops guarded at their header:
//!
//! * **Counter progress (upper bound).** If the header guard's *stay*
//!   condition is `r ≥ 1` for a linear `r`, and the transition invariant
//!   shows every iteration decreases `r` by at least `δ > 0`, then the loop
//!   completes at most `(sup r₀ − 1)/δ + 1` iterations, where `sup r₀` is
//!   the symbolic supremum of `r` at loop entry over the input seeds.
//! * **Counter progress (lower bound).** If additionally the guard is the
//!   *only* way out of the loop and every iteration decreases `r` by at
//!   most `Δ`, then exiting requires `r ≤ 0`, so at least `inf r₀ / Δ`
//!   iterations complete.
//! * **Geometric decrease (halving).** If the transition invariant shows
//!   `2·r′ ≤ r` every iteration (e.g. binary-search or shift loops with
//!   `i = i / 2`), then since staying requires `r ≥ 1`, the loop completes
//!   at most `⌊log₂(sup r₀)⌋ + 1` iterations.
//!
//! Guards over temporaries computed in the header block (e.g.
//! `i < len(guess)` materializes `len(guess)` into a temp) are normalized by
//! backward substitution through the header block, so the ranking function
//! is expressed over loop-entry values.

use crate::cost_expr::{CostExpr, Poly};
use crate::extraction::{pick_best, symbolic_infs, symbolic_sups};
use blazer_absint::seeding::TransitionInvariant;
use blazer_absint::DimMap;
use blazer_domains::{LinExpr, Polyhedron, Rat};
use blazer_ir::{BlockId, CmpOp, Cond, Function, Inst};
use std::collections::BTreeSet;

/// Symbolic bounds on a loop's completed-iteration count.
#[derive(Debug, Clone)]
pub struct IterationBounds {
    /// Guaranteed minimum number of completed iterations.
    pub lower: CostExpr,
    /// Maximum number of completed iterations (`None` = no bound found).
    pub upper: Option<CostExpr>,
}

impl IterationBounds {
    /// The trivial bounds `[0, ∞)`.
    pub fn unknown() -> Self {
        IterationBounds { lower: CostExpr::zero(), upper: None }
    }
}

/// The linear *stay* ranking function of a condition: a linear `r` such
/// that the condition holds iff `r ≥ 1` (on integers).
pub fn stay_ranking(dims: &DimMap, cond: &Cond, stay_on_taken: bool) -> Option<LinExpr> {
    let cond = if stay_on_taken { cond.clone() } else { cond.negate() };
    let Cond::Cmp(op, a, b) = cond else { return None };
    let ea = blazer_absint::transfer::linearize_operand(dims, a);
    let eb = blazer_absint::transfer::linearize_operand(dims, b);
    match op {
        CmpOp::Lt => Some(eb.sub(&ea)), // a < b  ⇔ b−a ≥ 1
        CmpOp::Le => Some(eb.sub(&ea).add_constant(Rat::ONE)), // a ≤ b ⇔ b−a+1 ≥ 1
        CmpOp::Gt => Some(ea.sub(&eb)), // a > b ⇔ a−b ≥ 1
        CmpOp::Ge => Some(ea.sub(&eb).add_constant(Rat::ONE)),
        CmpOp::Eq | CmpOp::Ne => None,
    }
}

/// Whether the transition invariant proves `2·ranking′ ≤ ranking`: the
/// supremum of `2·r(new) − r(old)` over the relation is at most zero.
fn halves_each_iteration(ranking: &LinExpr, ti: &TransitionInvariant) -> bool {
    let old = ranking.rename(|d| {
        if d < ti.dims.n_vars() {
            ti.dims.snap(blazer_ir::VarId::new(d as u32))
        } else {
            d
        }
    });
    let expr = ranking.scale(Rat::int(2)).sub(&old);
    match ti.relation.bounds(&expr).1 {
        Some(sup) => sup <= Rat::ZERO,
        None => false,
    }
}

/// Rewrites `expr` (over values *after* `block`'s instructions) into an
/// expression over values *before* them, by backward substitution of the
/// block's linear assignments. `None` if a mentioned variable is defined by
/// a non-linear instruction.
pub fn backsubst_through_block(
    f: &Function,
    dims: &DimMap,
    block: BlockId,
    expr: &LinExpr,
) -> Option<LinExpr> {
    let mut e = expr.clone();
    for inst in f.block(block).insts.iter().rev() {
        let Some(dst) = inst.def() else { continue };
        let d = dims.var(dst);
        if e.coeff(d).is_zero() {
            continue;
        }
        match inst {
            Inst::Assign { expr: rhs, .. } => {
                let lin = blazer_absint::transfer::linearize_expr(dims, rhs)?;
                e = e.substitute(d, &lin);
            }
            _ => return None,
        }
    }
    Some(e)
}

/// Matches the counter-progress lemmas for one loop.
///
/// * `ranking` — the stay ranking function, over loop-entry values;
/// * `entry_state` — join of states on edges entering the loop from outside;
/// * `ti` — the loop's transition invariant;
/// * `guard_is_sole_exit` — whether the header guard is the only feasible
///   exit (enables the lower-bound lemma);
/// * `seeds` — the seed dimensions bounds may mention;
/// * `temp_dim` — a dimension unused by any state.
pub fn match_counter_lemmas(
    ranking: &LinExpr,
    entry_state: &Polyhedron,
    ti: &TransitionInvariant,
    guard_is_sole_exit: bool,
    seeds: &BTreeSet<usize>,
    temp_dim: usize,
) -> IterationBounds {
    let (delta_inf, delta_sup) = ti.delta_bounds(ranking);

    // Upper bound. The geometric lemma is checked first: when `2·r′ ≤ r`
    // holds per iteration, the logarithmic count beats any linear one the
    // counter lemma would derive from the (state-dependent) decrease.
    let upper = if halves_each_iteration(ranking, ti) {
        let sups = symbolic_sups(entry_state, ranking, seeds, temp_dim);
        pick_best(sups, true).map(|r0| {
            // iterations ≤ log₂(r0) + 1 while r ≥ 1 is required to stay.
            CostExpr::poly(Poly::from_linexpr(&r0)).log2().add2(CostExpr::constant(Rat::ONE))
        })
    } else {
        match delta_sup {
            Some(s) if s.is_negative() => {
                let delta = -s; // per-iteration decrease ≥ δ
                let sups = symbolic_sups(entry_state, ranking, seeds, temp_dim);
                pick_best(sups, true).map(|r0| {
                    // iterations ≤ (r0 − 1)/δ + 1.
                    let p = Poly::from_linexpr(&r0)
                        .add(&Poly::constant(-Rat::ONE))
                        .scale(delta.recip())
                        .add(&Poly::constant(Rat::ONE));
                    CostExpr::poly(p).clamp_nonneg()
                })
            }
            _ => None,
        }
    };

    // Lower bound: needs the guard to be the only exit and bounded decrease.
    let lower = if guard_is_sole_exit {
        match delta_inf {
            Some(i) if i.is_negative() => {
                let cap = -i; // per-iteration decrease ≤ Δ
                let infs = symbolic_infs(entry_state, ranking, seeds, temp_dim);
                pick_best(infs, false)
                    .map(|r0| {
                        // iterations ≥ r0 / Δ.
                        let p = Poly::from_linexpr(&r0).scale(cap.recip());
                        CostExpr::poly(p).clamp_nonneg()
                    })
                    .unwrap_or_else(CostExpr::zero)
            }
            _ => CostExpr::zero(),
        }
    } else {
        CostExpr::zero()
    };

    IterationBounds { lower, upper }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazer_absint::engine::analyze;
    use blazer_absint::product::ProductGraph;
    use blazer_absint::seeding::loop_transition_invariant;
    use blazer_absint::transfer::entry_state;
    use blazer_ir::{Cfg, Operand};
    use blazer_lang::compile;

    /// Full pipeline up to iteration bounds for a single-loop function.
    fn iteration_bounds(src: &str) -> (IterationBounds, DimMap, blazer_ir::Program) {
        let p = compile(src).unwrap();
        let f = p.function("f").unwrap();
        let cfg = Cfg::new(f);
        let dims = DimMap::new(f);
        let g = ProductGraph::full(f, &cfg);
        let init: Polyhedron = entry_state(f, &dims);
        let r = analyze(&p, f, &dims, &g, init);
        let sccs = g.cyclic_sccs();
        assert_eq!(sccs.len(), 1);
        let scc = &sccs[0];
        let header = *g.back_edge_targets().iter().find(|h| scc.contains(h)).unwrap();
        let ti = loop_transition_invariant(&p, f, &g, scc, header, r.state(header));

        // Stay ranking from the header branch.
        let hblock = g.node(header).cfg_node.as_block(f.blocks().len()).unwrap();
        let blazer_ir::Terminator::Branch { cond, then_bb, .. } = &f.block(hblock).term else {
            panic!("header must branch")
        };
        // The then-arm stays in the loop for all these tests.
        let stay_taken = {
            let then_node = blazer_ir::NodeId::block(*then_bb);
            g.nodes().iter().any(|n| {
                n.cfg_node == then_node && {
                    let id = blazer_absint::ProductNodeId(
                        g.nodes().iter().position(|m| std::ptr::eq(m, n)).unwrap(),
                    );
                    scc.contains(&id)
                }
            })
        };
        let r_post = stay_ranking(&dims, cond, stay_taken).expect("linear guard");
        let ranking = backsubst_through_block(f, &dims, hblock, &r_post).expect("substitutable");

        // Loop-entry state: outputs of external in-edges.
        let mut entry = Polyhedron::bottom(dims.n_dims());
        for (ei, e) in g.edges().iter().enumerate() {
            if e.to == header && !scc.contains(&e.from) {
                entry = entry.join(&r.edge_output(&p, f, &dims, &g, ei));
            }
        }
        let seeds: BTreeSet<usize> = dims.seeds().collect();
        let ib = match_counter_lemmas(&ranking, &entry, &ti, true, &seeds, dims.n_dims() + 64);
        (ib, dims, p)
    }

    #[test]
    fn up_counting_loop_exact() {
        let (ib, dims, _p) =
            iteration_bounds("fn f(n: int) { let i: int = 0; while (i < n) { i = i + 1; } }");
        // iterations = max(0, n) exactly: lower == upper.
        let n = dims.seed(0);
        let expected = CostExpr::poly(Poly::var(n)).clamp_nonneg();
        assert_eq!(ib.upper, Some(expected.clone()));
        assert_eq!(ib.lower, expected);
    }

    #[test]
    fn down_counting_loop_exact() {
        let (ib, dims, _p) =
            iteration_bounds("fn f(h: int #high) { let i: int = h; while (i > 0) { i = i - 1; } }");
        let h = dims.seed(0);
        let expected = CostExpr::poly(Poly::var(h)).clamp_nonneg();
        assert_eq!(ib.upper, Some(expected.clone()));
        assert_eq!(ib.lower, expected);
    }

    #[test]
    fn stride_two_loop() {
        let (ib, dims, _p) =
            iteration_bounds("fn f(n: int) { let i: int = 0; while (i < n) { i = i + 2; } }");
        let n = dims.seed(0);
        // upper = (n − 1)/2 + 1 = (n + 1)/2; lower = n/2.
        let upper =
            CostExpr::poly(Poly::var(n).scale(Rat::new(1, 2)).add(&Poly::constant(Rat::new(1, 2))))
                .clamp_nonneg();
        let lower = CostExpr::poly(Poly::var(n).scale(Rat::new(1, 2))).clamp_nonneg();
        assert_eq!(ib.upper, Some(upper));
        assert_eq!(ib.lower, lower);
    }

    #[test]
    fn guard_over_len_temp_backsubstitutes() {
        let (ib, dims, _p) = iteration_bounds(
            "fn f(a: array) { let i: int = 0; while (i < len(a)) { i = i + 1; } }",
        );
        let a_len = dims.seed(0);
        let expected = CostExpr::poly(Poly::var(a_len)).clamp_nonneg();
        assert_eq!(ib.upper, Some(expected.clone()));
        assert_eq!(ib.lower, expected);
    }

    #[test]
    fn le_guard_off_by_one() {
        let (ib, dims, _p) =
            iteration_bounds("fn f(n: int) { let i: int = 1; while (i <= n) { i = i + 1; } }");
        let n = dims.seed(0);
        // stay: i ≤ n ⇔ n−i+1 ≥ 1; r0 = n; iterations = max(0, n).
        let expected = CostExpr::poly(Poly::var(n)).clamp_nonneg();
        assert_eq!(ib.upper, Some(expected.clone()));
        assert_eq!(ib.lower, expected);
    }

    #[test]
    fn stay_ranking_shapes() {
        let p = compile("fn f(a: int, b: int) { }").unwrap();
        let f = p.function("f").unwrap();
        let dims = DimMap::new(f);
        let a = Operand::Var(f.var_by_name("a").unwrap());
        let b = Operand::Var(f.var_by_name("b").unwrap());
        let da = dims.var(f.var_by_name("a").unwrap());
        let db = dims.var(f.var_by_name("b").unwrap());
        let r = stay_ranking(&dims, &Cond::cmp(CmpOp::Lt, a, b), true).unwrap();
        assert_eq!(r, LinExpr::var(db).sub(&LinExpr::var(da)));
        // Negated: stay on the else arm of a<b is a ≥ b ⇔ a−b+1 ≥ 1.
        let r = stay_ranking(&dims, &Cond::cmp(CmpOp::Lt, a, b), false).unwrap();
        assert_eq!(r, LinExpr::var(da).sub(&LinExpr::var(db)).add_constant(Rat::ONE));
        assert!(stay_ranking(&dims, &Cond::cmp(CmpOp::Eq, a, b), true).is_none());
        assert!(stay_ranking(&dims, &Cond::Nondet, true).is_none());
    }
}
