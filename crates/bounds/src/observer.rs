//! Observer models: when is a bound range "narrow", and when do two ranges
//! differ observably?
//!
//! "Blazer employs multiple approaches. We have a generic component that
//! computes the highest degree of the complexity bound polynomial ... In
//! other cases, a platform-specific model of execution cost can be used.
//! Here we make assumptions about the maximum values of the input variables
//! to compute the concrete number of instructions a bound expression
//! represents. Then the observable difference between bounds can be defined
//! as a threshold distance in numbers of instructions." (Sec. 5)

use crate::cost_expr::CostExpr;
use blazer_domains::Rat;
use std::collections::BTreeSet;

/// Concrete values assumed for the input seeds when instantiating symbolic
/// bounds (e.g. "4096 bits for the cryptographic benchmarks", Sec. 6.1).
#[derive(Debug, Clone)]
pub struct SeedAssignment {
    /// The default magnitude for any seed not listed in `overrides`.
    pub default: i64,
    /// Per-seed-dimension overrides.
    pub overrides: Vec<(usize, i64)>,
}

impl SeedAssignment {
    /// All seeds set to `default`.
    pub fn uniform(default: i64) -> Self {
        SeedAssignment { default, overrides: Vec::new() }
    }

    /// The value of seed dimension `dim`.
    pub fn value(&self, dim: usize) -> Rat {
        self.overrides
            .iter()
            .find(|(d, _)| *d == dim)
            .map(|&(_, v)| Rat::int(v as i128))
            .unwrap_or(Rat::int(self.default as i128))
    }

    /// Evaluates a cost expression under this assignment.
    pub fn eval(&self, e: &CostExpr) -> Rat {
        e.eval(&|d| self.value(d))
    }
}

/// The attacker's observational model.
#[derive(Debug, Clone)]
pub enum Observer {
    /// The MicroBench model: inputs are unbounded, and a range is narrow
    /// when its width is a constant at most `epsilon`; two ranges differ
    /// observably when their polynomial degrees differ or their constant
    /// parts differ by more than `epsilon`.
    DegreeEquivalence {
        /// The attacker-unobservable constant fluctuation `c`.
        epsilon: u64,
    },
    /// The STAC/literature model: instantiate symbolic bounds at assumed
    /// maximum input sizes; a range is narrow when its width is at most
    /// `threshold` instructions (the paper uses 25k).
    ConcreteThreshold {
        /// Assumed maximum input magnitudes.
        assumed: SeedAssignment,
        /// Observable-difference threshold in machine-model units.
        threshold: u64,
    },
}

impl Observer {
    /// The paper's MicroBench observer with a small epsilon.
    pub fn degree() -> Self {
        Observer::DegreeEquivalence { epsilon: 32 }
    }

    /// The paper's real-world observer: 4096-magnitude inputs, 25k units.
    pub fn stac() -> Self {
        Observer::ConcreteThreshold { assumed: SeedAssignment::uniform(4096), threshold: 25_000 }
    }

    /// Whether `[lower, upper]` is a *narrow* range.
    ///
    /// * Degree model (MicroBench): inputs are unbounded, so the width
    ///   `upper − lower` must be a secret-independent constant within
    ///   `epsilon` (identical secret-dependent terms cancel syntactically —
    ///   this is how `loopAndBranch_safe`'s tight `f(high)` bounds verify).
    /// * Threshold model (STAC/literature): exactly the paper's recipe —
    ///   "plug these values into the symbolic bound expressions to get a
    ///   concrete estimate of the maximum number of bytecode instructions"
    ///   — i.e. both bounds are *evaluated* at the assumed maximum input
    ///   magnitudes (secret sizes included) and their distance compared to
    ///   the threshold. Note this is a modeling choice inherited from the
    ///   original tool, not a semantic guarantee for all inputs.
    pub fn is_narrow(
        &self,
        lower: &CostExpr,
        upper: &CostExpr,
        high_seeds: &BTreeSet<usize>,
    ) -> bool {
        match self {
            Observer::DegreeEquivalence { epsilon } => {
                let diff = upper.sub(lower);
                if diff.dims().iter().any(|d| high_seeds.contains(d)) {
                    return false;
                }
                diff.degree() == 0
                    && diff.as_constant().map_or_else(
                        || {
                            // Degree-0 but with max/min structure:
                            // evaluate at an arbitrary point (constants
                            // only).
                            diff.eval(&|_| Rat::ZERO).abs() <= Rat::int(*epsilon as i128)
                        },
                        |c| c.abs() <= Rat::int(*epsilon as i128),
                    )
            }
            Observer::ConcreteThreshold { assumed, threshold } => {
                (assumed.eval(upper) - assumed.eval(lower)).abs() <= Rat::int(*threshold as i128)
            }
        }
    }

    /// Whether two ranges are *observably different* — the CHECKATTACK
    /// criterion for high-split siblings: some execution in one range is
    /// distinguishable from every execution in the other.
    pub fn observably_different(
        &self,
        (lo1, hi1): (&CostExpr, Option<&CostExpr>),
        (lo2, hi2): (&CostExpr, Option<&CostExpr>),
    ) -> bool {
        match self {
            Observer::DegreeEquivalence { epsilon } => {
                // Different asymptotics are observable.
                let d1 = hi1.map(|h| h.degree()).unwrap_or(u32::MAX);
                let d2 = hi2.map(|h| h.degree()).unwrap_or(u32::MAX);
                if d1 != d2 || lo1.degree() != lo2.degree() {
                    return true;
                }
                // Same shape: compare the gap between the ranges at a
                // canonical large input.
                let at = |e: &CostExpr| e.eval(&|_| Rat::int(1009));
                let eps = Rat::int(*epsilon as i128);
                match (hi1, hi2) {
                    (Some(h1), Some(h2)) => at(lo1) - at(h2) > eps || at(lo2) - at(h1) > eps,
                    _ => false,
                }
            }
            Observer::ConcreteThreshold { assumed, threshold } => {
                let eps = Rat::int(*threshold as i128);
                match (hi1, hi2) {
                    (Some(h1), Some(h2)) => {
                        assumed.eval(lo1) - assumed.eval(h2) > eps
                            || assumed.eval(lo2) - assumed.eval(h1) > eps
                    }
                    // An unbounded side against a bounded one: observable
                    // when the bounded side is exceeded by the other's
                    // lower... without an upper bound we compare lower
                    // bounds only, conservatively not observable.
                    _ => false,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost_expr::Poly;

    fn c(n: i128) -> CostExpr {
        CostExpr::constant(Rat::int(n))
    }

    fn linear(dim: usize, k: i128, b: i128) -> CostExpr {
        CostExpr::poly(Poly::var(dim).scale(Rat::int(k)).add(&Poly::constant(Rat::int(b))))
    }

    #[test]
    fn degree_narrow_constant_gap() {
        let obs = Observer::degree();
        let high = BTreeSet::new();
        assert!(obs.is_narrow(&c(8), &c(8), &high));
        assert!(obs.is_narrow(&c(8), &c(30), &high));
        assert!(!obs.is_narrow(&c(8), &c(100), &high));
        // Same symbolic linear bound: width 0.
        assert!(obs.is_narrow(&linear(0, 5, 2), &linear(0, 5, 9), &high));
        // Linear width: not narrow.
        assert!(!obs.is_narrow(&c(1), &linear(0, 5, 2), &high));
    }

    #[test]
    fn high_dependent_width_is_never_narrow() {
        let obs = Observer::degree();
        let high = BTreeSet::from([7]);
        // Width = x7 (a high seed): not narrow even though degree 1 both.
        assert!(!obs.is_narrow(&linear(7, 1, 0), &linear(7, 2, 0), &high));
        // Identical high-dependent bounds cancel: narrow (loopAndBranch).
        assert!(obs.is_narrow(&linear(7, 2, 0), &linear(7, 2, 3), &high));
    }

    #[test]
    fn threshold_narrowness() {
        let obs =
            Observer::ConcreteThreshold { assumed: SeedAssignment::uniform(100), threshold: 500 };
        let high = BTreeSet::new();
        // Width 4·x0 at x0=100 → 400 ≤ 500: narrow.
        assert!(obs.is_narrow(&linear(0, 19, 10), &linear(0, 23, 10), &high));
        // Width 6·x0 at x0=100 → 600 > 500: not narrow.
        assert!(!obs.is_narrow(&linear(0, 17, 10), &linear(0, 23, 10), &high));
    }

    #[test]
    fn observable_differences_by_degree() {
        let obs = Observer::degree();
        // Constant vs linear: different degrees → observable.
        assert!(obs.observably_different((&c(5), Some(&c(6))), (&c(0), Some(&linear(0, 3, 0)))));
        // Two constants far apart → observable.
        assert!(obs.observably_different((&c(90), Some(&c(90))), (&c(2), Some(&c(2)))));
        // Two constants within epsilon → not observable.
        assert!(!obs.observably_different((&c(5), Some(&c(6))), (&c(7), Some(&c(8)))));
    }

    #[test]
    fn observable_differences_by_threshold() {
        let obs = Observer::ConcreteThreshold {
            assumed: SeedAssignment::uniform(4096),
            threshold: 25_000,
        };
        // Early-exit (constant) vs full-scan (20·4096 ≈ 82k) → observable.
        assert!(obs.observably_different(
            (&c(6), Some(&c(6))),
            (&linear(0, 20, 8), Some(&linear(0, 20, 8)))
        ));
        // Two nearby linear ranges → not observable.
        assert!(!obs.observably_different(
            (&linear(0, 20, 0), Some(&linear(0, 20, 10))),
            (&linear(0, 20, 5), Some(&linear(0, 20, 15)))
        ));
    }

    #[test]
    fn seed_assignment_overrides() {
        let a = SeedAssignment { default: 10, overrides: vec![(3, 100)] };
        assert_eq!(a.value(0), Rat::int(10));
        assert_eq!(a.value(3), Rat::int(100));
        let e = linear(3, 2, 1);
        assert_eq!(a.eval(&e), Rat::int(201));
    }

    #[test]
    fn unbounded_upper_with_degree_observer_is_observable_vs_bounded() {
        let obs = Observer::degree();
        assert!(obs.observably_different((&c(5), Some(&c(6))), (&c(0), None)));
    }
}
