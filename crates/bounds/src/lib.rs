//! # blazer-bounds
//!
//! BOUNDANALYSIS: symbolic lower/upper running-time bounds for the
//! executions described by a trail.
//!
//! This is the component the paper describes as: "we attempt to prove a
//! tight lower and upper bound on the running time of traces described by
//! the trail by matching transition relations with a database of lemmas"
//! (Sec. 1, Sec. 5). The pipeline per trail:
//!
//! 1. the trail-restricted abstract interpretation from `blazer-absint`
//!    produces invariants on the CFG×DFA product and prunes infeasible
//!    edges;
//! 2. every loop (cyclic SCC of the pruned product) gets a *transition
//!    invariant* via seeding, which the [`lemmas`] database matches to
//!    derive symbolic iteration-count bounds over the input seeds;
//! 3. loops collapse to summary edges and a min/max dynamic program over
//!    the remaining DAG yields whole-trail bounds as [`CostExpr`]s —
//!    multivariate polynomials over the inputs extended with `max`/`min`
//!    nodes;
//! 4. an [`Observer`] model judges whether a `[lower, upper]` range is
//!    *narrow* (Sec. 5's two models: polynomial-degree equivalence for the
//!    micro-benchmarks, concrete instruction thresholds under assumed
//!    maximum input sizes for the STAC/literature benchmarks).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod cost_expr;
pub mod extraction;
pub mod lemmas;
pub mod observer;

pub use analysis::{graph_bounds, graph_bounds_seeded, BoundResult, SeededBounds};
pub use cost_expr::{CostExpr, Poly};
pub use lemmas::IterationBounds;
pub use observer::{Observer, SeedAssignment};
