//! BOUNDANALYSIS: whole-trail symbolic running-time bounds.
//!
//! See the crate docs for the pipeline. The core recursion: a graph's loops
//! (cyclic SCCs of the feasible subgraph) are summarized — iteration bounds
//! from the lemma database × per-iteration body bounds from the loop's
//! header-split copy — and the rest is a min/max dynamic program over the
//! acyclic condensation.

use crate::cost_expr::{CostExpr, Poly};
use crate::extraction::{pick_best, symbolic_infs, symbolic_sups};
use crate::lemmas::{backsubst_through_block, match_counter_lemmas, stay_ranking, IterationBounds};
use blazer_absint::engine::{analyze_from, AnalysisResult};
use blazer_absint::incremental::SeedMap;
use blazer_absint::product::{ProductGraph, ProductNodeId};
use blazer_absint::seeding::{header_split_graph, loop_transition_invariant};
use blazer_absint::transfer::transfer_inst;
use blazer_absint::DimMap;
use blazer_domains::{AbstractDomain, LinExpr, Rat};
use blazer_ir::cost::CostModel;
use blazer_ir::{CallCost, Function, Inst, Program};
use std::collections::{BTreeMap, BTreeSet};

/// The outcome of bound analysis on one (trail-restricted) graph.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundResult {
    /// Symbolic lower bound on the cost of any complete trace, or `None`
    /// when no trace reaches an accepted exit (the trail is empty).
    pub lower: Option<CostExpr>,
    /// Symbolic upper bound, or `None` when no bound could be established.
    pub upper: Option<CostExpr>,
}

impl BoundResult {
    /// Whether the analyzed language is empty (no complete executions).
    pub fn is_empty_language(&self) -> bool {
        self.lower.is_none()
    }
}

/// Computes `[lower, upper]` symbolic cost bounds for all paths of `graph`
/// from its entry to its accepted exits, starting from abstract state
/// `init`.
///
/// `seeds` are the dimensions bounds may mention (the input seeds).
pub fn graph_bounds<D: AbstractDomain>(
    program: &Program,
    f: &Function,
    dims: &DimMap,
    graph: &ProductGraph,
    init: &D,
    cost_model: &CostModel,
    seeds: &BTreeSet<usize>,
) -> BoundResult {
    graph_bounds_seeded(program, f, dims, graph, init, cost_model, seeds, None, false).result
}

/// A [`graph_bounds_seeded`] outcome: the bounds plus the converged
/// per-location post-states (for seeding descendant trails) and the
/// top-level fixpoint's pass count.
#[derive(Debug, Clone)]
pub struct SeededBounds {
    /// The symbolic cost bounds.
    pub result: BoundResult,
    /// Per-CFG-location post-states of the trail's *top-level* fixpoint,
    /// collected only when requested and the analysis actually ran (absent
    /// on a budget-skipped run, whose states were never computed).
    pub post: Option<SeedMap>,
    /// Increasing + narrowing passes of the top-level fixpoint (nested
    /// loop-summary fixpoints are excluded: they are never seeded, so this
    /// isolates what seeding can save).
    pub top_passes: u64,
    /// Whether the top-level fixpoint started from a seed.
    pub seeded: bool,
}

/// [`graph_bounds`] with incremental fixpoint seeding: the trail's
/// top-level abstract interpretation starts from `seed` (an ancestor
/// trail's [`SeedMap`]) when given, and the converged post-states are
/// handed back (as `post`, when `collect_post`) so the caller can seed the
/// trail's own children in turn. Nested header-split fixpoints inside loop
/// summaries always run unseeded: their graphs are per-loop constructions
/// with no parent counterpart.
#[allow(clippy::too_many_arguments)]
pub fn graph_bounds_seeded<D: AbstractDomain>(
    program: &Program,
    f: &Function,
    dims: &DimMap,
    graph: &ProductGraph,
    init: &D,
    cost_model: &CostModel,
    seeds: &BTreeSet<usize>,
    seed: Option<&SeedMap>,
    collect_post: bool,
) -> SeededBounds {
    if blazer_ir::budget::check().is_err() {
        // Degraded answer: cost is trivially ≥ 0 and unknown above. The
        // missing upper bound can only make interval comparison *wider*
        // (Unknown), never a wrong Safe.
        blazer_ir::budget::note_degradation(
            "bounds: analysis skipped by exhausted budget; answering [0, ∞)",
        );
        return SeededBounds {
            result: BoundResult { lower: Some(CostExpr::zero()), upper: None },
            post: None,
            top_passes: 0,
            seeded: false,
        };
    }
    let seed_states: Option<Vec<D>> = seed.map(|sm| sm.seed_states(graph));
    let seeded = seed_states.is_some();
    let prepared = prepare(program, f, dims, graph, init, cost_model, seeds, seed_states, 0);
    let (lower, upper) = dp(program, f, dims, graph, &prepared, cost_model, seeds, graph.exits());
    let post =
        collect_post.then(|| SeedMap::from_states(graph, &prepared.res.states, dims.n_dims()));
    SeededBounds {
        result: BoundResult { lower, upper },
        post,
        top_passes: prepared.top_passes,
        seeded,
    }
}

/// Recursion-depth cap: benchmark programs nest a handful of loops; beyond
/// this we give up (upper `None`) rather than risk runaway analysis.
const MAX_LOOP_DEPTH: usize = 12;

/// Everything computed once per graph: the fixpoint, edge feasibility, and
/// loop summaries.
struct Prepared<D> {
    res: AnalysisResult<D>,
    feasible: Vec<bool>,
    /// `scc_of[node] = Some(scc index)`.
    scc_of: Vec<Option<usize>>,
    /// Per SCC: summary cost for each exit edge index.
    exit_summaries: Vec<BTreeMap<usize, (CostExpr, Option<CostExpr>)>>,
    /// Per SCC: whether entries are well-formed (single header).
    wellformed: Vec<bool>,
    /// Passes of this graph's own fixpoint (excluding nested summaries).
    top_passes: u64,
}

#[allow(clippy::too_many_arguments)]
fn prepare<D: AbstractDomain>(
    program: &Program,
    f: &Function,
    dims: &DimMap,
    graph: &ProductGraph,
    init: &D,
    cost_model: &CostModel,
    seeds: &BTreeSet<usize>,
    seed_states: Option<Vec<D>>,
    depth: usize,
) -> Prepared<D> {
    let (res, stats) = analyze_from(program, f, dims, graph, init.clone(), seed_states);
    let feasible: Vec<bool> = (0..graph.edges().len())
        .map(|ei| {
            let e = &graph.edges()[ei];
            !res.state(e.from).is_bottom() && res.edge_feasible(program, f, dims, graph, ei)
        })
        .collect();
    let sccs = cyclic_sccs_feasible(graph, &feasible);
    let mut scc_of = vec![None; graph.len()];
    for (i, scc) in sccs.iter().enumerate() {
        for n in scc {
            scc_of[n.0] = Some(i);
        }
    }

    let mut exit_summaries = Vec::with_capacity(sccs.len());
    let mut wellformed = Vec::with_capacity(sccs.len());
    for scc in &sccs {
        let (summary, ok) =
            summarize_loop(program, f, dims, graph, &res, &feasible, scc, cost_model, seeds, depth);
        exit_summaries.push(summary);
        wellformed.push(ok);
    }
    Prepared { res, feasible, scc_of, exit_summaries, wellformed, top_passes: stats.passes }
}

/// Summarizes one loop: returns per-exit-edge cost summaries, whether the
/// loop is well-formed (single-header), and its header.
#[allow(clippy::too_many_arguments)]
fn summarize_loop<D: AbstractDomain>(
    program: &Program,
    f: &Function,
    dims: &DimMap,
    graph: &ProductGraph,
    res: &AnalysisResult<D>,
    feasible: &[bool],
    scc: &[ProductNodeId],
    cost_model: &CostModel,
    seeds: &BTreeSet<usize>,
    depth: usize,
) -> (BTreeMap<usize, (CostExpr, Option<CostExpr>)>, bool) {
    // Feasible exit edges, and external entries.
    let mut exit_edges = Vec::new();
    let mut entry_targets = BTreeSet::new();
    for (ei, e) in graph.edges().iter().enumerate() {
        if !feasible[ei] {
            continue;
        }
        let from_in = scc.contains(&e.from);
        let to_in = scc.contains(&e.to);
        if from_in && !to_in {
            exit_edges.push(ei);
        }
        if !from_in && to_in {
            entry_targets.insert(e.to);
        }
    }
    if scc.contains(&graph.entry()) {
        entry_targets.insert(graph.entry());
    }
    let unknown_summary = |exit_edges: &[usize]| {
        exit_edges.iter().map(|&ei| (ei, (CostExpr::zero(), None))).collect::<BTreeMap<_, _>>()
    };
    if entry_targets.len() != 1 || depth >= MAX_LOOP_DEPTH {
        return (unknown_summary(&exit_edges), false);
    }
    if blazer_ir::budget::check().is_err() {
        // Unknown upper bounds are always sound; skip the recursive
        // header-split analysis once the budget is gone.
        blazer_ir::budget::note_degradation("bounds: loop summary skipped by exhausted budget");
        return (unknown_summary(&exit_edges), false);
    }
    let header = *entry_targets.iter().next().unwrap();

    // Loop-entry state: join over external feasible in-edges (plus the
    // graph init when the header is the entry — covered by res.state when
    // entry == header, but entry is never inside an SCC for our lowering).
    let mut entry_state = D::bottom(dims.n_dims());
    for (ei, e) in graph.edges().iter().enumerate() {
        if feasible[ei] && e.to == header && !scc.contains(&e.from) {
            entry_state = entry_state.join(&res.edge_output(program, f, dims, graph, ei));
        }
    }

    // Iteration bounds from the header guard. The transition invariant
    // usually only needs difference facts (per-iteration deltas), so it is
    // first computed in the fast zone domain; when that fails to bound the
    // iterations (e.g. multiplicative counter updates, whose deltas are not
    // octagonal), it is recomputed in the analysis domain.
    let head_state = res.state(header);
    let temp_dim = dims.n_dims() + dims.n_vars() + 8;
    let guard_is_sole_exit = exit_edges.iter().all(|&ei| graph.edges()[ei].from == header);
    let mut iter_bounds = IterationBounds::unknown();
    let ranking = graph
        .node(header)
        .cfg_node
        .as_block(f.blocks().len().max(1))
        .filter(|b| b.index() < f.blocks().len())
        .and_then(|hblock| {
            let blazer_ir::Terminator::Branch { cond, .. } = &f.block(hblock).term else {
                return None;
            };
            // The arm that stays inside the SCC defines the ranking.
            let stay_taken = graph.succ_edges(header).iter().find_map(|&ei| {
                let e = &graph.edges()[ei];
                if feasible[ei] && scc.contains(&e.to) {
                    e.cond.as_ref().map(|(_, taken)| *taken)
                } else {
                    None
                }
            })?;
            let r_post = stay_ranking(dims, cond, stay_taken)?;
            backsubst_through_block(f, dims, hblock, &r_post)
        });
    if let Some(ranking) = &ranking {
        let zone_head = {
            let mut z = blazer_domains::Zone::top(dims.n_dims());
            for c in head_state.to_polyhedron().constraints() {
                z.meet_constraint(c);
            }
            z
        };
        let ti = loop_transition_invariant(program, f, graph, scc, header, &zone_head);
        iter_bounds = match_counter_lemmas(
            ranking,
            &entry_state.to_polyhedron(),
            &ti,
            guard_is_sole_exit,
            seeds,
            temp_dim,
        );
        if iter_bounds.upper.is_none() {
            // Zone deltas were too weak: retry in the analysis domain.
            let ti = loop_transition_invariant(program, f, graph, scc, header, head_state);
            iter_bounds = match_counter_lemmas(
                ranking,
                &entry_state.to_polyhedron(),
                &ti,
                guard_is_sole_exit,
                seeds,
                temp_dim,
            );
        }
    }

    // One-iteration body bounds via the header-split graph.
    let (split, sink) = header_split_graph(graph, scc, header);
    let split_prepared =
        prepare(program, f, dims, &split, head_state, cost_model, seeds, None, depth + 1);
    let (body_lo, body_hi) =
        dp(program, f, dims, &split, &split_prepared, cost_model, seeds, &[sink]);
    let (iter_lo, iter_hi, body_lo, body_hi) = match body_lo {
        // No feasible complete iteration: zero iterations ever complete.
        None => {
            (CostExpr::zero(), Some(CostExpr::zero()), CostExpr::zero(), Some(CostExpr::zero()))
        }
        Some(lo) => (iter_bounds.lower, iter_bounds.upper, lo, body_hi),
    };
    let loop_lo = iter_lo.mul_nonneg(body_lo);
    let loop_hi = match (&iter_hi, &body_hi) {
        (Some(i), Some(b)) => Some(i.clone().mul_nonneg(b.clone())),
        _ => None,
    };

    // Per-exit-edge summaries: loop cost + partial path to the exit source
    // + the exit source's own block cost.
    let mut summaries = BTreeMap::new();
    for &ei in &exit_edges {
        let u = graph.edges()[ei].from;
        let (partial_lo, partial_hi) = if u == header {
            (Some(CostExpr::zero()), Some(CostExpr::zero()))
        } else {
            match scc.iter().position(|&n| n == u) {
                // The exit source may sit inside an inner loop of the split
                // graph; dp handles that only for plain targets.
                Some(pos) => dp(
                    program,
                    f,
                    dims,
                    &split,
                    &split_prepared,
                    cost_model,
                    seeds,
                    &[ProductNodeId(pos)],
                ),
                None => (Some(CostExpr::zero()), None),
            }
        };
        let (ub_lo, ub_hi) =
            node_block_cost(program, f, dims, graph, &res.state(u).clone(), u, cost_model, seeds);
        let lo = loop_lo.clone().add2(partial_lo.unwrap_or_else(CostExpr::zero)).add2(ub_lo);
        let hi = match (&loop_hi, partial_hi, ub_hi) {
            (Some(l), Some(p), Some(u)) => Some(l.clone().add2(p).add2(u)),
            _ => None,
        };
        summaries.insert(ei, (lo, hi));
    }
    (summaries, true)
}

/// Min/max path cost from the graph entry to any of `targets` over the
/// collapsed (loop-summarized) DAG. Returns `(lower, upper)`; lower `None`
/// means no target is reachable; upper `None` means unbounded/unknown.
#[allow(clippy::too_many_arguments)]
fn dp<D: AbstractDomain>(
    program: &Program,
    f: &Function,
    dims: &DimMap,
    graph: &ProductGraph,
    prepared: &Prepared<D>,
    cost_model: &CostModel,
    seeds: &BTreeSet<usize>,
    targets: &[ProductNodeId],
) -> (Option<CostExpr>, Option<CostExpr>) {
    // Representative of a node in the condensation.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    enum Rep {
        Node(usize),
        Scc(usize),
    }
    let rep_of = |n: ProductNodeId| match prepared.scc_of[n.0] {
        Some(s) => Rep::Scc(s),
        None => Rep::Node(n.0),
    };

    // A target inside an SCC is only supported when it is that SCC's
    // header reached with zero completed iterations — too imprecise to
    // model here, so we bail with unknown upper (sound lower = 0 via the
    // entry short-circuit below when applicable).
    for &t in targets {
        if prepared.scc_of[t.0].is_some() {
            // Conservative: reachable with unknown bounds if the SCC is
            // reachable at all; we only report a sound trivial result.
            return (Some(CostExpr::zero()), None);
        }
    }

    // Collapsed edges: (from rep, to rep, lower cost, upper cost).
    let mut cedges: Vec<(Rep, Rep, CostExpr, Option<CostExpr>)> = Vec::new();
    for (ei, e) in graph.edges().iter().enumerate() {
        if !prepared.feasible[ei] {
            continue;
        }
        let from_scc = prepared.scc_of[e.from.0];
        let to_scc = prepared.scc_of[e.to.0];
        match (from_scc, to_scc) {
            (Some(s1), Some(s2)) if s1 == s2 => continue, // internal
            (Some(s), _) => {
                let (lo, hi) = prepared.exit_summaries[s]
                    .get(&ei)
                    .cloned()
                    .unwrap_or((CostExpr::zero(), None));
                let hi = if prepared.wellformed[s] { hi } else { None };
                cedges.push((Rep::Scc(s), rep_of(e.to), lo, hi));
            }
            (None, _) => {
                let (lo, hi) = node_block_cost(
                    program,
                    f,
                    dims,
                    graph,
                    &prepared.res.state(e.from).clone(),
                    e.from,
                    cost_model,
                    seeds,
                );
                cedges.push((Rep::Node(e.from.0), rep_of(e.to), lo, hi));
            }
        }
    }

    // Topological order of the condensation (it is acyclic).
    let mut reps: BTreeSet<Rep> = cedges.iter().flat_map(|(a, b, _, _)| [*a, *b]).collect();
    reps.insert(rep_of(graph.entry()));
    for &t in targets {
        reps.insert(rep_of(t));
    }
    let mut succ: BTreeMap<Rep, Vec<usize>> = BTreeMap::new();
    for (i, (a, _, _, _)) in cedges.iter().enumerate() {
        succ.entry(*a).or_default().push(i);
    }
    let order = topo_order(&reps, &cedges);

    let target_reps: BTreeSet<Rep> = targets.iter().map(|&t| rep_of(t)).collect();
    let mut lower: BTreeMap<Rep, CostExpr> = BTreeMap::new();
    let mut upper: BTreeMap<Rep, Option<CostExpr>> = BTreeMap::new();
    for &r in order.iter().rev() {
        if target_reps.contains(&r) {
            lower.insert(r, CostExpr::zero());
            upper.insert(r, Some(CostExpr::zero()));
            continue;
        }
        let mut lo_acc: Option<CostExpr> = None;
        let mut hi_acc: Option<Option<CostExpr>> = None;
        for &ei in succ.get(&r).map(|v| v.as_slice()).unwrap_or(&[]) {
            let (_, to, elo, ehi) = &cedges[ei];
            let Some(tlo) = lower.get(to) else { continue };
            let cand_lo = elo.clone().add2(tlo.clone());
            lo_acc = Some(match lo_acc {
                None => cand_lo,
                Some(acc) => acc.min2(cand_lo),
            });
            let cand_hi = match (ehi, upper.get(to).cloned().flatten()) {
                (Some(e), Some(t)) => Some(e.clone().add2(t)),
                _ => None,
            };
            hi_acc = Some(match (hi_acc, cand_hi) {
                (None, c) => c,
                (Some(None), _) | (Some(_), None) => None,
                (Some(Some(acc)), Some(c)) => Some(acc.max2(c)),
            });
        }
        if let Some(lo) = lo_acc {
            lower.insert(r, lo);
            upper.insert(r, hi_acc.flatten());
        }
    }

    let er = rep_of(graph.entry());
    (lower.get(&er).cloned(), upper.get(&er).cloned().flatten())
}

fn topo_order<Rep: Copy + Ord>(
    reps: &BTreeSet<Rep>,
    cedges: &[(Rep, Rep, CostExpr, Option<CostExpr>)],
) -> Vec<Rep> {
    // Kahn's algorithm; the condensation is acyclic by construction.
    let mut indeg: BTreeMap<Rep, usize> = reps.iter().map(|&r| (r, 0)).collect();
    for (a, b, _, _) in cedges {
        if a != b {
            *indeg.get_mut(b).unwrap() += 1;
        }
    }
    let mut queue: Vec<Rep> = indeg.iter().filter(|(_, &d)| d == 0).map(|(&r, _)| r).collect();
    let mut order = Vec::new();
    let mut qi = 0;
    while qi < queue.len() {
        let r = queue[qi];
        qi += 1;
        order.push(r);
        for (a, b, _, _) in cedges {
            if *a == r && a != b {
                let d = indeg.get_mut(b).unwrap();
                *d -= 1;
                if *d == 0 {
                    queue.push(*b);
                }
            }
        }
    }
    order
}

/// The cost range of executing one node's block (instructions plus
/// terminator). Linear call summaries become symbolic bounds over the
/// seeds; everything else is constant.
#[allow(clippy::too_many_arguments)]
fn node_block_cost<D: AbstractDomain>(
    program: &Program,
    f: &Function,
    dims: &DimMap,
    graph: &ProductGraph,
    state: &D,
    node: ProductNodeId,
    cost_model: &CostModel,
    seeds: &BTreeSet<usize>,
) -> (CostExpr, Option<CostExpr>) {
    let Some(bid) = graph
        .node(node)
        .cfg_node
        .as_block(f.blocks().len().max(1))
        .filter(|b| b.index() < f.blocks().len())
    else {
        return (CostExpr::zero(), Some(CostExpr::zero()));
    };
    let mut cur = state.clone();
    let mut lo = CostExpr::zero();
    let mut hi: Option<CostExpr> = Some(CostExpr::zero());
    let temp_dim = dims.n_dims() + dims.n_vars() + 16;
    // The walker threads the model's abstract cache state (must-resident
    // lines) through the block, so each instruction prices as a [lo, hi]
    // range; exact models always return point ranges.
    let mut walker = cost_model.walker();
    for inst in &f.block(bid).insts {
        match walker.inst_cost(inst) {
            Ok(r) => {
                lo = lo.add2(CostExpr::constant(Rat::int(r.lo as i128)));
                hi = hi.map(|h| h.add2(CostExpr::constant(Rat::int(r.hi as i128))));
            }
            Err(CallCost::Const(c)) => {
                let c = CostExpr::constant(Rat::int(c as i128));
                lo = lo.add2(c.clone());
                hi = hi.map(|h| h.add2(c));
            }
            Err(CallCost::Linear { arg, coeff, constant }) => {
                // cost = coeff·max(arg, 0) + constant.
                let Inst::Call { args, .. } = inst else { unreachable!() };
                let expr = match args.get(arg) {
                    Some(op) => blazer_absint::transfer::linearize_operand(dims, *op),
                    None => LinExpr::zero(),
                };
                let k = Rat::int(coeff as i128);
                let c0 = Rat::int(constant as i128);
                let poly = cur.to_polyhedron();
                // Lower: coeff·max(inf(arg), 0) + constant.
                let arg_lo = pick_best(symbolic_infs(&poly, &expr, seeds, temp_dim), false);
                let add_lo = match arg_lo {
                    Some(b) => CostExpr::poly(Poly::from_linexpr(&b))
                        .clamp_nonneg()
                        .mul_nonneg(CostExpr::constant(k))
                        .add2(CostExpr::constant(c0)),
                    None => CostExpr::constant(c0),
                };
                lo = lo.add2(add_lo);
                // Upper: coeff·max(sup(arg), 0) + constant.
                let arg_hi = pick_best(symbolic_sups(&poly, &expr, seeds, temp_dim), true);
                hi = match (hi, arg_hi) {
                    (Some(h), Some(b)) => Some(
                        h.add2(
                            CostExpr::poly(Poly::from_linexpr(&b))
                                .clamp_nonneg()
                                .mul_nonneg(CostExpr::constant(k))
                                .add2(CostExpr::constant(c0)),
                        ),
                    ),
                    _ => None,
                };
            }
        }
        transfer_inst(program, f, dims, inst, &mut cur);
    }
    let t = CostExpr::constant(Rat::int(cost_model.term_cost(&f.block(bid).term) as i128));
    lo = lo.add2(t.clone());
    hi = hi.map(|h| h.add2(t));
    (lo, hi)
}

/// Cyclic SCCs of the subgraph of feasible edges.
fn cyclic_sccs_feasible(graph: &ProductGraph, feasible: &[bool]) -> Vec<Vec<ProductNodeId>> {
    // Tarjan over filtered adjacency.
    let n = graph.len();
    let succs: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            graph
                .succ_edges(ProductNodeId(i))
                .iter()
                .copied()
                .filter(|&ei| feasible[ei])
                .map(|ei| graph.edges()[ei].to.0)
                .collect()
        })
        .collect();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next = 0usize;
    let mut out: Vec<Vec<ProductNodeId>> = Vec::new();
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        index[root] = next;
        low[root] = next;
        next += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            if *pos < succs[v].len() {
                let w = succs[v][*pos];
                *pos += 1;
                if index[w] == usize::MAX {
                    index[w] = next;
                    low[w] = next;
                    next += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().unwrap();
                        on_stack[w] = false;
                        comp.push(ProductNodeId(w));
                        if w == v {
                            break;
                        }
                    }
                    let cyclic = comp.len() > 1 || succs[v].contains(&v);
                    if cyclic {
                        comp.sort();
                        out.push(comp);
                    }
                }
                let (fin, _) = frames.pop().unwrap();
                if let Some(&mut (p, _)) = frames.last_mut() {
                    low[p] = low[p].min(low[fin]);
                }
            }
        }
    }
    out
}
