//! Parametric bound extraction: suprema/infima of a linear expression as
//! symbolic functions of the input seeds.
//!
//! Given an invariant polyhedron `P` and an expression `e` over program
//! variables, we want `sup e` not as a number but as a linear expression
//! over the *seed* dimensions (the function inputs). Mechanically this is
//! parametric linear programming, implemented here by Fourier–Motzkin: add
//! a fresh dimension `t = e`, project out everything except `t` and the
//! seeds, and read the surviving upper bounds on `t`.

use blazer_domains::{Constraint, ConstraintKind, LinExpr, Polyhedron, Rat};
use std::collections::BTreeSet;

/// All linear upper bounds of `expr` over the seeds: each returned `b`
/// satisfies `expr ≤ b` on every point of `state`, and mentions only seed
/// dimensions. Empty result means no (finite, seed-expressible) upper bound.
///
/// `temp_dim` must be a dimension index unused by `state`.
pub fn symbolic_sups(
    state: &Polyhedron,
    expr: &LinExpr,
    seeds: &BTreeSet<usize>,
    temp_dim: usize,
) -> Vec<LinExpr> {
    bounds_on_temp(state, expr, seeds, temp_dim, true)
}

/// All linear lower bounds of `expr` over the seeds (`expr ≥ b`).
pub fn symbolic_infs(
    state: &Polyhedron,
    expr: &LinExpr,
    seeds: &BTreeSet<usize>,
    temp_dim: usize,
) -> Vec<LinExpr> {
    bounds_on_temp(state, expr, seeds, temp_dim, false)
}

fn bounds_on_temp(
    state: &Polyhedron,
    expr: &LinExpr,
    seeds: &BTreeSet<usize>,
    temp_dim: usize,
    upper: bool,
) -> Vec<LinExpr> {
    if state.is_empty() {
        return Vec::new();
    }
    let mut p = state.clone();
    p.add_constraint(Constraint::eq(&LinExpr::var(temp_dim), expr));
    let mut keep = seeds.clone();
    keep.insert(temp_dim);
    let projected = p.project_onto(&keep);
    if projected.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for c in projected.constraints() {
        for part in c.split() {
            debug_assert_eq!(part.kind, ConstraintKind::GeZero);
            let ct = part.expr.coeff(temp_dim);
            if ct.is_zero() {
                continue;
            }
            // c_t·t + rest ≥ 0.
            let mut rest = part.expr.clone();
            rest.set_coeff(temp_dim, Rat::ZERO);
            if upper && ct.is_negative() {
                // t ≤ rest / (−c_t).
                out.push(rest.scale(-ct.recip()));
            } else if !upper && ct.is_positive() {
                // t ≥ −rest / c_t.
                out.push(rest.scale(-ct.recip()));
            }
        }
    }
    // Only keep bounds purely over seeds (projection guarantees this, but be
    // defensive) and dedupe.
    out.retain(|b| b.dims().all(|d| seeds.contains(&d)));
    out.dedup();
    out
}

/// Picks the best candidate from symbolic bounds by evaluating at a
/// canonical large point (all seeds = 1009): the smallest value for an
/// upper bound, the largest for a lower bound. Deterministic.
pub fn pick_best(candidates: Vec<LinExpr>, upper: bool) -> Option<LinExpr> {
    let score = |e: &LinExpr| e.eval(|_| Rat::int(1009));
    candidates.into_iter().reduce(|best, cand| {
        let better = if upper { score(&cand) < score(&best) } else { score(&cand) > score(&best) };
        if better {
            cand
        } else {
            best
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128) -> Rat {
        Rat::int(n)
    }

    /// Dims: 0 = i (var), 1 = n (seed). Invariant 0 ≤ i ≤ n.
    fn loop_state() -> Polyhedron {
        let mut p = Polyhedron::top(2);
        p.add_constraint(Constraint::ge(&LinExpr::var(0), &LinExpr::zero()));
        p.add_constraint(Constraint::le(&LinExpr::var(0), &LinExpr::var(1)));
        p
    }

    #[test]
    fn sup_of_var_is_seed() {
        let seeds = BTreeSet::from([1]);
        let sups = symbolic_sups(&loop_state(), &LinExpr::var(0), &seeds, 5);
        assert!(sups.contains(&LinExpr::var(1)), "{sups:?}");
        let infs = symbolic_infs(&loop_state(), &LinExpr::var(0), &seeds, 5);
        assert!(infs.contains(&LinExpr::zero().add_constant(Rat::ZERO)), "{infs:?}");
    }

    #[test]
    fn sup_of_affine_combination() {
        // sup(2i + 3) = 2n + 3.
        let seeds = BTreeSet::from([1]);
        let e = LinExpr::var(0).scale(r(2)).add_constant(r(3));
        let sups = symbolic_sups(&loop_state(), &e, &seeds, 5);
        let expected = LinExpr::var(1).scale(r(2)).add_constant(r(3));
        assert!(sups.contains(&expected), "{sups:?}");
    }

    #[test]
    fn unbounded_gives_empty() {
        let p = Polyhedron::top(2);
        let seeds = BTreeSet::from([1]);
        assert!(symbolic_sups(&p, &LinExpr::var(0), &seeds, 5).is_empty());
    }

    #[test]
    fn equality_pins_both_sides() {
        // i = n exactly: sup = inf = n.
        let mut p = Polyhedron::top(2);
        p.add_constraint(Constraint::eq(&LinExpr::var(0), &LinExpr::var(1)));
        let seeds = BTreeSet::from([1]);
        let sups = symbolic_sups(&p, &LinExpr::var(0), &seeds, 5);
        let infs = symbolic_infs(&p, &LinExpr::var(0), &seeds, 5);
        assert!(sups.contains(&LinExpr::var(1)));
        assert!(infs.contains(&LinExpr::var(1)));
    }

    #[test]
    fn pick_best_prefers_tighter() {
        let a = LinExpr::var(1); // n
        let b = LinExpr::var(1).scale(r(2)); // 2n
        assert_eq!(pick_best(vec![a.clone(), b.clone()], true), Some(a.clone()));
        assert_eq!(pick_best(vec![a.clone(), b.clone()], false), Some(b));
        assert_eq!(pick_best(vec![], true), None);
    }

    #[test]
    fn constant_bounds_survive() {
        // 2 ≤ i ≤ 7, no seeds involved.
        let mut p = Polyhedron::top(1);
        p.add_constraint(Constraint::ge(&LinExpr::var(0), &LinExpr::constant(r(2))));
        p.add_constraint(Constraint::le(&LinExpr::var(0), &LinExpr::constant(r(7))));
        let seeds = BTreeSet::new();
        let sups = symbolic_sups(&p, &LinExpr::var(0), &seeds, 5);
        assert!(sups.contains(&LinExpr::constant(r(7))), "{sups:?}");
        let infs = symbolic_infs(&p, &LinExpr::var(0), &seeds, 5);
        assert!(infs.contains(&LinExpr::constant(r(2))), "{infs:?}");
    }
}
