//! Symbolic cost expressions: multivariate polynomials with max/min nodes.

use blazer_domains::{LinExpr, Rat};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A monomial: a product of dimension powers, e.g. `x0²·x3`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Monomial(Vec<(usize, u32)>);

impl Monomial {
    /// The empty monomial (the constant 1).
    pub fn one() -> Self {
        Monomial(Vec::new())
    }

    /// A single variable.
    pub fn var(dim: usize) -> Self {
        Monomial(vec![(dim, 1)])
    }

    /// Product of two monomials.
    pub fn mul(&self, other: &Monomial) -> Monomial {
        let mut powers: BTreeMap<usize, u32> = self.0.iter().copied().collect();
        for &(d, p) in &other.0 {
            *powers.entry(d).or_insert(0) += p;
        }
        Monomial(powers.into_iter().collect())
    }

    /// Total degree.
    pub fn degree(&self) -> u32 {
        self.0.iter().map(|&(_, p)| p).sum()
    }

    /// Dimensions mentioned.
    pub fn dims(&self) -> impl Iterator<Item = usize> + '_ {
        self.0.iter().map(|&(d, _)| d)
    }

    /// Evaluation under an assignment.
    pub fn eval(&self, value_of: &dyn Fn(usize) -> Rat) -> Rat {
        let mut acc = Rat::ONE;
        for &(d, p) in &self.0 {
            let v = value_of(d);
            for _ in 0..p {
                acc = acc * v;
            }
        }
        acc
    }
}

impl fmt::Display for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return f.write_str("1");
        }
        for (i, &(d, p)) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str("·")?;
            }
            if p == 1 {
                write!(f, "x{d}")?;
            } else {
                write!(f, "x{d}^{p}")?;
            }
        }
        Ok(())
    }
}

/// A multivariate polynomial with rational coefficients.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Poly {
    /// Non-zero terms only.
    terms: BTreeMap<Monomial, Rat>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly::default()
    }

    /// A constant.
    pub fn constant(k: Rat) -> Self {
        let mut p = Poly::zero();
        p.add_term(Monomial::one(), k);
        p
    }

    /// A single variable.
    pub fn var(dim: usize) -> Self {
        let mut p = Poly::zero();
        p.add_term(Monomial::var(dim), Rat::ONE);
        p
    }

    /// Lifts a linear expression.
    pub fn from_linexpr(e: &LinExpr) -> Self {
        let mut p = Poly::constant(e.constant_part());
        for (d, c) in e.terms() {
            p.add_term(Monomial::var(d), c);
        }
        p
    }

    fn add_term(&mut self, m: Monomial, c: Rat) {
        if c.is_zero() {
            return;
        }
        let entry = self.terms.entry(m.clone()).or_insert(Rat::ZERO);
        *entry += c;
        if entry.is_zero() {
            self.terms.remove(&m);
        }
    }

    /// Sum.
    pub fn add(&self, other: &Poly) -> Poly {
        let mut out = self.clone();
        for (m, &c) in &other.terms {
            out.add_term(m.clone(), c);
        }
        out
    }

    /// Difference.
    pub fn sub(&self, other: &Poly) -> Poly {
        self.add(&other.scale(-Rat::ONE))
    }

    /// Scalar multiple.
    pub fn scale(&self, k: Rat) -> Poly {
        if k.is_zero() {
            return Poly::zero();
        }
        Poly { terms: self.terms.iter().map(|(m, &c)| (m.clone(), c * k)).collect() }
    }

    /// Product.
    pub fn mul(&self, other: &Poly) -> Poly {
        let mut out = Poly::zero();
        for (m1, &c1) in &self.terms {
            for (m2, &c2) in &other.terms {
                out.add_term(m1.mul(m2), c1 * c2);
            }
        }
        out
    }

    /// Evaluation under an assignment.
    pub fn eval(&self, value_of: &dyn Fn(usize) -> Rat) -> Rat {
        let mut acc = Rat::ZERO;
        for (m, &c) in &self.terms {
            acc += c * m.eval(value_of);
        }
        acc
    }

    /// Total degree (0 for constants, including the zero polynomial).
    pub fn degree(&self) -> u32 {
        self.terms.keys().map(Monomial::degree).max().unwrap_or(0)
    }

    /// Dimensions mentioned.
    pub fn dims(&self) -> BTreeSet<usize> {
        self.terms.keys().flat_map(|m| m.dims().collect::<Vec<_>>()).collect()
    }

    /// Whether the polynomial is a constant; returns it if so.
    pub fn as_constant(&self) -> Option<Rat> {
        match self.terms.len() {
            0 => Some(Rat::ZERO),
            1 => {
                let (m, &c) = self.terms.iter().next().unwrap();
                (*m == Monomial::one()).then_some(c)
            }
            _ => None,
        }
    }

    /// Whether `self - other` is a non-negative constant (used to collapse
    /// comparable alternatives inside max/min).
    pub fn dominates_by_constant(&self, other: &Poly) -> bool {
        self.sub(other).as_constant().is_some_and(|c| c >= Rat::ZERO)
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return f.write_str("0");
        }
        let mut first = true;
        for (m, c) in self.terms.iter().rev() {
            if first {
                first = false;
                if *m == Monomial::one() {
                    write!(f, "{c}")?;
                } else if *c == Rat::ONE {
                    write!(f, "{m}")?;
                } else {
                    write!(f, "{c}·{m}")?;
                }
            } else {
                let (sign, mag) = if c.is_negative() { (" - ", -*c) } else { (" + ", *c) };
                f.write_str(sign)?;
                if *m == Monomial::one() {
                    write!(f, "{mag}")?;
                } else if mag == Rat::ONE {
                    write!(f, "{m}")?;
                } else {
                    write!(f, "{mag}·{m}")?;
                }
            }
        }
        Ok(())
    }
}

/// A symbolic cost: polynomials composed with max, min, sums, and products
/// of non-negative factors.
///
/// Built by the smart constructors, which collapse polynomial-only cases so
/// that typical bounds print as plain polynomials like `23·g.len + 10`.
#[derive(Debug, Clone, PartialEq)]
pub enum CostExpr {
    /// A polynomial over input-seed dimensions.
    Poly(Poly),
    /// Pointwise maximum of alternatives.
    Max(Vec<CostExpr>),
    /// Pointwise minimum of alternatives.
    Min(Vec<CostExpr>),
    /// Sum of terms.
    Add(Vec<CostExpr>),
    /// Product of two factors that are non-negative for all relevant
    /// inputs (iteration counts and per-iteration costs by construction).
    MulNonneg(Box<CostExpr>, Box<CostExpr>),
    /// Negation (only produced by [`CostExpr::sub`]; never appears in
    /// bounds themselves).
    Neg(Box<CostExpr>),
    /// `⌊log₂(max(e, 1))⌋` — produced by the halving lemma for geometric
    /// loops.
    Log2(Box<CostExpr>),
}

impl CostExpr {
    /// The zero cost.
    pub fn zero() -> Self {
        CostExpr::Poly(Poly::zero())
    }

    /// A constant cost.
    pub fn constant(k: Rat) -> Self {
        CostExpr::Poly(Poly::constant(k))
    }

    /// A polynomial cost.
    pub fn poly(p: Poly) -> Self {
        CostExpr::Poly(p)
    }

    /// `max(self, other)`, collapsing comparable polynomials.
    pub fn max2(self, other: CostExpr) -> CostExpr {
        if self == other {
            return self;
        }
        if let (CostExpr::Poly(a), CostExpr::Poly(b)) = (&self, &other) {
            if a.dominates_by_constant(b) {
                return self;
            }
            if b.dominates_by_constant(a) {
                return other;
            }
        }
        let mut items = Vec::new();
        for e in [self, other] {
            match e {
                CostExpr::Max(v) => items.extend(v),
                e => items.push(e),
            }
        }
        items.dedup();
        if items.len() == 1 {
            items.pop().unwrap()
        } else {
            CostExpr::Max(items)
        }
    }

    /// `min(self, other)`, collapsing comparable polynomials.
    pub fn min2(self, other: CostExpr) -> CostExpr {
        if self == other {
            return self;
        }
        if let (CostExpr::Poly(a), CostExpr::Poly(b)) = (&self, &other) {
            if a.dominates_by_constant(b) {
                return other;
            }
            if b.dominates_by_constant(a) {
                return self;
            }
        }
        let mut items = Vec::new();
        for e in [self, other] {
            match e {
                CostExpr::Min(v) => items.extend(v),
                e => items.push(e),
            }
        }
        items.dedup();
        if items.len() == 1 {
            items.pop().unwrap()
        } else {
            CostExpr::Min(items)
        }
    }

    /// `⌊log₂(max(self, 1))⌋`, collapsing constants.
    pub fn log2(self) -> CostExpr {
        if let Some(c) = self.as_constant() {
            let n = c.floor().max(1);
            let mut bits = 0i128;
            let mut v = n;
            while v > 1 {
                v /= 2;
                bits += 1;
            }
            return CostExpr::constant(Rat::int(bits));
        }
        CostExpr::Log2(Box::new(self))
    }

    /// `max(0, self)` — used for iteration counts.
    pub fn clamp_nonneg(self) -> CostExpr {
        if let CostExpr::Poly(p) = &self {
            if let Some(c) = p.as_constant() {
                return CostExpr::constant(c.max(Rat::ZERO));
            }
        }
        CostExpr::zero().max2(self)
    }

    /// Sum, merging polynomial parts.
    pub fn add2(self, other: CostExpr) -> CostExpr {
        let mut polys = Poly::zero();
        let mut rest: Vec<CostExpr> = Vec::new();
        for e in [self, other] {
            match e {
                CostExpr::Poly(p) => polys = polys.add(&p),
                CostExpr::Add(v) => {
                    for t in v {
                        match t {
                            CostExpr::Poly(p) => polys = polys.add(&p),
                            t => rest.push(t),
                        }
                    }
                }
                e => rest.push(e),
            }
        }
        if rest.is_empty() {
            return CostExpr::Poly(polys);
        }
        if polys != Poly::zero() {
            rest.insert(0, CostExpr::Poly(polys));
        }
        if rest.len() == 1 {
            rest.pop().unwrap()
        } else {
            CostExpr::Add(rest)
        }
    }

    /// Product of two non-negative costs, collapsing polynomial factors and
    /// distributing over max/min (valid because both sides are ≥ 0).
    pub fn mul_nonneg(self, other: CostExpr) -> CostExpr {
        match (&self, &other) {
            (CostExpr::Poly(a), CostExpr::Poly(b)) => return CostExpr::Poly(a.mul(b)),
            (CostExpr::Poly(p), _) | (_, CostExpr::Poly(p)) => {
                if let Some(c) = p.as_constant() {
                    if c.is_zero() {
                        return CostExpr::zero();
                    }
                    if c == Rat::ONE {
                        return if matches!(self, CostExpr::Poly(_)) { other } else { self };
                    }
                }
            }
            _ => {}
        }
        // Distribute a max/min over the other (non-negative) factor.
        match self {
            CostExpr::Max(items) => {
                return items
                    .into_iter()
                    .map(|e| e.mul_nonneg(other.clone()))
                    .reduce(CostExpr::max2)
                    .unwrap_or_else(CostExpr::zero)
            }
            CostExpr::Min(items) => {
                return items
                    .into_iter()
                    .map(|e| e.mul_nonneg(other.clone()))
                    .reduce(CostExpr::min2)
                    .unwrap_or_else(CostExpr::zero)
            }
            _ => {}
        }
        match other {
            CostExpr::Max(items) => items
                .into_iter()
                .map(|e| self.clone().mul_nonneg(e))
                .reduce(CostExpr::max2)
                .unwrap_or_else(CostExpr::zero),
            CostExpr::Min(items) => items
                .into_iter()
                .map(|e| self.clone().mul_nonneg(e))
                .reduce(CostExpr::min2)
                .unwrap_or_else(CostExpr::zero),
            other => CostExpr::MulNonneg(Box::new(self), Box::new(other)),
        }
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)] // by-value helper, mirrors scale()
    pub fn neg(self) -> CostExpr {
        match self {
            CostExpr::Poly(p) => CostExpr::Poly(p.scale(-Rat::ONE)),
            CostExpr::Neg(e) => *e,
            CostExpr::Add(v) => CostExpr::Add(v.into_iter().map(CostExpr::neg).collect()),
            e => CostExpr::Neg(Box::new(e)),
        }
    }

    /// `self - other` with syntactic cancellation of shared terms.
    ///
    /// This is what lets the narrowness check conclude that an upper and
    /// lower bound sharing the same (possibly secret-dependent) loop term
    /// differ only by a constant.
    pub fn sub(&self, other: &CostExpr) -> CostExpr {
        fn terms(e: &CostExpr) -> Vec<CostExpr> {
            match e {
                CostExpr::Add(v) => v.clone(),
                e => vec![e.clone()],
            }
        }
        let mut lhs = terms(self);
        let mut rhs = terms(other);
        lhs.retain(|t| {
            if let Some(i) = rhs.iter().position(|u| u == t) {
                rhs.remove(i);
                false
            } else {
                true
            }
        });
        let mut acc = CostExpr::zero();
        for t in lhs {
            acc = acc.add2(t);
        }
        for t in rhs {
            acc = acc.add2(t.neg());
        }
        acc
    }

    /// Evaluation under an assignment of dimensions.
    pub fn eval(&self, value_of: &dyn Fn(usize) -> Rat) -> Rat {
        match self {
            CostExpr::Poly(p) => p.eval(value_of),
            CostExpr::Max(v) => {
                v.iter().map(|e| e.eval(value_of)).reduce(Rat::max).unwrap_or(Rat::ZERO)
            }
            CostExpr::Min(v) => {
                v.iter().map(|e| e.eval(value_of)).reduce(Rat::min).unwrap_or(Rat::ZERO)
            }
            CostExpr::Add(v) => v.iter().map(|e| e.eval(value_of)).fold(Rat::ZERO, |a, b| a + b),
            CostExpr::MulNonneg(a, b) => a.eval(value_of) * b.eval(value_of),
            CostExpr::Neg(e) => -e.eval(value_of),
            CostExpr::Log2(e) => {
                let mut v = e.eval(value_of).floor().max(1);
                let mut bits = 0i128;
                while v > 1 {
                    v /= 2;
                    bits += 1;
                }
                Rat::int(bits)
            }
        }
    }

    /// Total polynomial degree (max over branches).
    pub fn degree(&self) -> u32 {
        match self {
            CostExpr::Poly(p) => p.degree(),
            CostExpr::Max(v) | CostExpr::Min(v) | CostExpr::Add(v) => {
                v.iter().map(CostExpr::degree).max().unwrap_or(0)
            }
            CostExpr::MulNonneg(a, b) => a.degree() + b.degree(),
            CostExpr::Neg(e) => e.degree(),
            // Logarithms are sublinear; degree 0 matches the degree
            // observer's intent (log n ≺ n).
            CostExpr::Log2(_) => 0,
        }
    }

    /// All dimensions mentioned.
    pub fn dims(&self) -> BTreeSet<usize> {
        match self {
            CostExpr::Poly(p) => p.dims(),
            CostExpr::Max(v) | CostExpr::Min(v) | CostExpr::Add(v) => {
                v.iter().flat_map(CostExpr::dims).collect()
            }
            CostExpr::MulNonneg(a, b) => {
                let mut d = a.dims();
                d.extend(b.dims());
                d
            }
            CostExpr::Neg(e) => e.dims(),
            CostExpr::Log2(e) => e.dims(),
        }
    }

    /// The constant value, if this expression is a constant.
    pub fn as_constant(&self) -> Option<Rat> {
        match self {
            CostExpr::Poly(p) => p.as_constant(),
            _ => None,
        }
    }

    /// Renders the expression with dimension names from `name_of`.
    pub fn display_with(&self, name_of: &dyn Fn(usize) -> String) -> String {
        fn go(e: &CostExpr, name_of: &dyn Fn(usize) -> String) -> String {
            match e {
                CostExpr::Poly(p) => {
                    let s = p.to_string();
                    // Rewrite xN tokens with names.
                    let mut out = String::new();
                    let mut chars = s.chars().peekable();
                    while let Some(c) = chars.next() {
                        if c == 'x' {
                            let mut num = String::new();
                            while let Some(d) = chars.peek().filter(|d| d.is_ascii_digit()) {
                                num.push(*d);
                                chars.next();
                            }
                            if num.is_empty() {
                                out.push('x');
                            } else {
                                out.push_str(&name_of(num.parse().unwrap()));
                            }
                        } else {
                            out.push(c);
                        }
                    }
                    out
                }
                CostExpr::Max(v) => format!(
                    "max({})",
                    v.iter().map(|e| go(e, name_of)).collect::<Vec<_>>().join(", ")
                ),
                CostExpr::Min(v) => format!(
                    "min({})",
                    v.iter().map(|e| go(e, name_of)).collect::<Vec<_>>().join(", ")
                ),
                CostExpr::Add(v) => {
                    v.iter().map(|e| go(e, name_of)).collect::<Vec<_>>().join(" + ")
                }
                CostExpr::MulNonneg(a, b) => {
                    format!("({})·({})", go(a, name_of), go(b, name_of))
                }
                CostExpr::Neg(e) => format!("-({})", go(e, name_of)),
                CostExpr::Log2(e) => format!("log2({})", go(e, name_of)),
            }
        }
        go(self, name_of)
    }
}

impl fmt::Display for CostExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display_with(&|d| format!("x{d}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128) -> Rat {
        Rat::int(n)
    }

    #[test]
    fn poly_arithmetic() {
        // (x0 + 2)(x0 + 3) = x0² + 5x0 + 6.
        let a = Poly::var(0).add(&Poly::constant(r(2)));
        let b = Poly::var(0).add(&Poly::constant(r(3)));
        let p = a.mul(&b);
        assert_eq!(p.degree(), 2);
        assert_eq!(p.eval(&|_| r(1)), r(12));
        assert_eq!(p.eval(&|_| r(0)), r(6));
        assert_eq!(p.sub(&p), Poly::zero());
    }

    #[test]
    fn poly_display() {
        let p = Poly::var(0).scale(r(23)).add(&Poly::constant(r(10)));
        assert_eq!(p.to_string(), "23·x0 + 10");
        assert_eq!(Poly::zero().to_string(), "0");
    }

    #[test]
    fn max_collapses_equal_and_comparable() {
        let a = CostExpr::poly(Poly::var(0));
        let b = CostExpr::poly(Poly::var(0));
        assert_eq!(a.clone().max2(b), a);
        // x0 + 5 dominates x0 + 2 by a constant.
        let lo = CostExpr::poly(Poly::var(0).add(&Poly::constant(r(2))));
        let hi = CostExpr::poly(Poly::var(0).add(&Poly::constant(r(5))));
        assert_eq!(lo.clone().max2(hi.clone()), hi);
        assert_eq!(lo.clone().min2(hi.clone()), lo);
        // Incomparable: stays a Max.
        let other = CostExpr::poly(Poly::var(1));
        assert!(matches!(lo.max2(other), CostExpr::Max(_)));
    }

    #[test]
    fn add_merges_polynomials() {
        let a = CostExpr::poly(Poly::var(0));
        let b = CostExpr::constant(r(5));
        let s = a.add2(b);
        assert_eq!(s, CostExpr::poly(Poly::var(0).add(&Poly::constant(r(5)))));
    }

    #[test]
    fn mul_distributes_over_max() {
        // max(0, x0) * 3 = max(0, 3x0).
        let it = CostExpr::poly(Poly::var(0)).clamp_nonneg();
        let prod = it.mul_nonneg(CostExpr::constant(r(3)));
        assert_eq!(prod, CostExpr::zero().max2(CostExpr::poly(Poly::var(0).scale(r(3)))));
        assert_eq!(prod.eval(&|_| r(4)), r(12));
        assert_eq!(prod.eval(&|_| r(-4)), r(0));
    }

    #[test]
    fn sub_cancels_shared_terms() {
        // (max(0,h)·5 + 23) − (max(0,h)·5 + 8) = 15 even though `h` is
        // secret — the cancellation is what verifies loopAndBranch_safe.
        let shared =
            CostExpr::poly(Poly::var(9)).clamp_nonneg().mul_nonneg(CostExpr::constant(r(5)));
        let upper = shared.clone().add2(CostExpr::constant(r(23)));
        let lower = shared.add2(CostExpr::constant(r(8)));
        let diff = upper.sub(&lower);
        assert_eq!(diff.as_constant(), Some(r(15)));
        assert!(diff.dims().is_empty());
    }

    #[test]
    fn sub_without_cancellation_keeps_dims() {
        let upper = CostExpr::poly(Poly::var(3));
        let lower = CostExpr::constant(r(1));
        let diff = upper.sub(&lower);
        assert_eq!(diff.dims(), BTreeSet::from([3]));
        assert_eq!(diff.eval(&|_| r(10)), r(9));
    }

    #[test]
    fn degrees() {
        assert_eq!(CostExpr::constant(r(7)).degree(), 0);
        assert_eq!(CostExpr::poly(Poly::var(0)).degree(), 1);
        let sq = CostExpr::poly(Poly::var(0)).mul_nonneg(CostExpr::poly(Poly::var(0)));
        assert_eq!(sq.degree(), 2);
        let m = CostExpr::poly(Poly::var(0)).max2(CostExpr::constant(r(1)));
        assert_eq!(m.degree(), 1);
    }

    #[test]
    fn clamp_constants_eagerly() {
        assert_eq!(CostExpr::constant(r(-5)).clamp_nonneg(), CostExpr::zero());
        assert_eq!(CostExpr::constant(r(5)).clamp_nonneg(), CostExpr::constant(r(5)));
    }

    #[test]
    fn display_with_names() {
        let e = CostExpr::poly(Poly::var(0).scale(r(23)).add(&Poly::constant(r(10))));
        let s = e.display_with(&|_| "g.len".to_string());
        assert_eq!(s, "23·g.len + 10");
    }

    #[test]
    fn log2_constants_fold_and_eval_floors() {
        assert_eq!(CostExpr::constant(r(1)).log2(), CostExpr::constant(r(0)));
        assert_eq!(CostExpr::constant(r(2)).log2(), CostExpr::constant(r(1)));
        assert_eq!(CostExpr::constant(r(1024)).log2(), CostExpr::constant(r(10)));
        // Non-positive arguments clamp to log2(1) = 0.
        assert_eq!(CostExpr::constant(r(-7)).log2(), CostExpr::constant(r(0)));
        // Symbolic: evaluation floors.
        let e = CostExpr::poly(Poly::var(0)).log2();
        assert_eq!(e.eval(&|_| r(9)), r(3));
        assert_eq!(e.eval(&|_| r(8)), r(3));
        assert_eq!(e.eval(&|_| r(7)), r(2));
        assert_eq!(e.degree(), 0, "log is sublinear");
        assert!(e.dims().contains(&0));
    }

    #[test]
    fn eval_of_nested_structures() {
        // min(max(0, x0), 10) + 2·x0
        let e = CostExpr::poly(Poly::var(0))
            .clamp_nonneg()
            .min2(CostExpr::constant(r(10)))
            .add2(CostExpr::poly(Poly::var(0).scale(r(2))));
        assert_eq!(e.eval(&|_| r(3)), r(9));
        assert_eq!(e.eval(&|_| r(50)), r(110));
        assert_eq!(e.eval(&|_| r(-2)), r(-4));
    }
}
