//! Whole programs and external function declarations.

use crate::function::Function;
use crate::inst::CallCost;
use crate::types::{SecurityLabel, Type};
use std::collections::BTreeMap;
use std::fmt;

/// A declaration of an external (library) function.
///
/// Externals stand in for Java library methods (`BigInteger.multiply`,
/// `HashMap.containsKey`, `md5`, ...). The analyses never see their bodies;
/// instead each declaration carries:
///
/// * a running-time summary ([`CallCost`]), mirroring Blazer's
///   "manually-specified summaries of running times" (Sec. 5);
/// * the type and [`SecurityLabel`] of the returned value (for taint);
/// * for array results, an inclusive length range. A lower bound of `-1`
///   means the result may be `null` (nullness is encoded as length `-1`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExternDecl {
    /// The callee name used by [`crate::Inst::Call`].
    pub name: String,
    /// Declared parameter types.
    pub params: Vec<Type>,
    /// Return type, if the function returns a value.
    pub ret: Option<Type>,
    /// Security label of the returned value.
    pub ret_label: SecurityLabel,
    /// Running-time summary.
    pub cost: CallCost,
    /// Inclusive length range for array results (`-1` lower bound means the
    /// result may be null). Ignored for scalar results.
    pub ret_len: Option<(i64, i64)>,
}

impl ExternDecl {
    /// A scalar-returning external with a constant cost and low result.
    pub fn simple(
        name: impl Into<String>,
        params: Vec<Type>,
        ret: Option<Type>,
        cost: u64,
    ) -> Self {
        ExternDecl {
            name: name.into(),
            params,
            ret,
            ret_label: SecurityLabel::Low,
            cost: CallCost::Const(cost),
            ret_len: None,
        }
    }
}

/// A program: functions plus the external declarations they may call.
#[derive(Debug, Clone, Default)]
pub struct Program {
    functions: BTreeMap<String, Function>,
    externs: BTreeMap<String, ExternDecl>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Adds (or replaces) a function; returns the previous one if present.
    pub fn add_function(&mut self, f: Function) -> Option<Function> {
        self.functions.insert(f.name().to_string(), f)
    }

    /// Adds (or replaces) an external declaration.
    pub fn add_extern(&mut self, e: ExternDecl) -> Option<ExternDecl> {
        self.externs.insert(e.name.clone(), e)
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.get(name)
    }

    /// Looks up an external declaration by name.
    pub fn extern_decl(&self, name: &str) -> Option<&ExternDecl> {
        self.externs.get(name)
    }

    /// All functions in name order.
    pub fn functions(&self) -> impl Iterator<Item = &Function> {
        self.functions.values()
    }

    /// All external declarations in name order.
    pub fn externs(&self) -> impl Iterator<Item = &ExternDecl> {
        self.externs.values()
    }

    /// Checks that every call site targets a declared external with a
    /// matching argument count.
    ///
    /// # Errors
    ///
    /// Returns a description of the first dangling or arity-mismatched call.
    pub fn validate(&self) -> Result<(), String> {
        for f in self.functions() {
            for (bid, block) in f.iter_blocks() {
                for inst in &block.insts {
                    if let crate::Inst::Call { callee, args, .. } = inst {
                        let decl = self.externs.get(callee).ok_or_else(|| {
                            format!("{}::{bid}: call to undeclared external `{callee}`", f.name())
                        })?;
                        if decl.params.len() != args.len() {
                            return Err(format!(
                                "{}::{bid}: `{callee}` expects {} args, got {}",
                                f.name(),
                                decl.params.len(),
                                args.len()
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in self.externs() {
            writeln!(f, "extern {} /* {} */", e.name, e.cost)?;
        }
        for func in self.functions() {
            writeln!(f, "{func}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::Operand;

    #[test]
    fn validate_catches_dangling_call() {
        let mut b = FunctionBuilder::new("f");
        b.call(None, "mystery", vec![], CallCost::Const(1));
        b.ret(None);
        let mut p = Program::new();
        p.add_function(b.finish());
        assert!(p.validate().is_err());
        p.add_extern(ExternDecl::simple("mystery", vec![], None, 1));
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validate_catches_arity_mismatch() {
        let mut b = FunctionBuilder::new("f");
        b.call(None, "one_arg", vec![Operand::konst(3), Operand::konst(4)], CallCost::Const(1));
        b.ret(None);
        let mut p = Program::new();
        p.add_function(b.finish());
        p.add_extern(ExternDecl::simple("one_arg", vec![Type::Int], None, 1));
        let err = p.validate().unwrap_err();
        assert!(err.contains("expects 1 args"), "{err}");
    }

    #[test]
    fn lookup() {
        let mut b = FunctionBuilder::new("f");
        b.ret(None);
        let mut p = Program::new();
        p.add_function(b.finish());
        assert!(p.function("f").is_some());
        assert!(p.function("g").is_none());
        assert_eq!(p.functions().count(), 1);
    }
}
