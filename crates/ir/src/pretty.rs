//! Human-readable printing of IR functions.

use crate::function::{BlockId, Function};
use std::fmt;

/// Writes a listing of `func` to `f`, used by `Function`'s `Display` impl.
pub fn write_function(f: &mut fmt::Formatter<'_>, func: &Function) -> fmt::Result {
    write!(f, "fn {}(", func.name())?;
    for (i, p) in func.params().iter().enumerate() {
        if i > 0 {
            f.write_str(", ")?;
        }
        let info = func.var(p.var);
        write!(f, "{}: {} #{}", info.name, info.ty, p.label)?;
    }
    f.write_str(")")?;
    if let Some(rt) = func.ret_ty() {
        write!(f, " -> {rt}")?;
    }
    writeln!(f, " {{")?;
    for (bid, block) in func.iter_blocks() {
        let marker = if bid == func.entry() { " (entry)" } else { "" };
        writeln!(f, "  {bid}:{marker}")?;
        for inst in &block.insts {
            writeln!(f, "    {inst}")?;
        }
        writeln!(f, "    {}", block.term)?;
    }
    f.write_str("}")
}

/// Renders just one block as a string (for diagnostics).
pub fn block_to_string(func: &Function, bid: BlockId) -> String {
    let block = func.block(bid);
    let mut out = format!("{bid}:\n");
    for inst in &block.insts {
        out.push_str(&format!("  {inst}\n"));
    }
    out.push_str(&format!("  {}\n", block.term));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::Operand;
    use crate::types::{SecurityLabel, Type};
    use crate::BinOp;

    #[test]
    fn listing_contains_the_pieces() {
        let mut b = FunctionBuilder::new("demo");
        let x = b.param("x", Type::Int, SecurityLabel::High);
        let y = b.local("y", Type::Int);
        b.binop(y, BinOp::Add, x, Operand::konst(1));
        b.ret(Some(Operand::Var(y)));
        let f = b.finish();
        let s = f.to_string();
        assert!(s.contains("fn demo(x: int #high)"), "{s}");
        assert!(s.contains("v1 = v0 + 1"), "{s}");
        assert!(s.contains("return v1"), "{s}");
    }

    #[test]
    fn block_to_string_shows_terminator() {
        let mut b = FunctionBuilder::new("demo");
        b.tick(2);
        b.ret(None);
        let f = b.finish();
        let s = block_to_string(&f, f.entry());
        assert!(s.contains("tick(2)"));
        assert!(s.contains("return"));
    }
}
