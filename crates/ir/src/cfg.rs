//! Control-flow graph view of a function with a single virtual exit node.
//!
//! Trails (Sec. 4.1) are regular expressions over *CFG edges*, and the paper's
//! control-flow-graph automaton has "a singleton containing the exit block"
//! as its final state set. Functions in this IR return from arbitrary blocks,
//! so the [`Cfg`] adds one virtual exit node; each `Return` terminator
//! contributes an edge `block → exit`.

use crate::function::{BlockId, Function};
use std::fmt;

/// A node of the [`Cfg`]: either a real basic block or the virtual exit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Node for a real block.
    pub fn block(b: BlockId) -> Self {
        NodeId(b.index() as u32)
    }

    /// The raw index (exit node has index `n_blocks`).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The underlying block, unless this is the exit node of a CFG with
    /// `n_blocks` blocks.
    pub fn as_block(self, n_blocks: usize) -> Option<BlockId> {
        if (self.0 as usize) < n_blocks {
            Some(BlockId::new(self.0))
        } else {
            None
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A directed CFG edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    /// Source node.
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
}

impl Edge {
    /// Constructs an edge.
    pub fn new(from: NodeId, to: NodeId) -> Self {
        Edge { from, to }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.from, self.to)
    }
}

/// The control-flow graph of a [`Function`] with a virtual exit node.
#[derive(Debug, Clone)]
pub struct Cfg {
    n_blocks: usize,
    entry: NodeId,
    succs: Vec<Vec<NodeId>>,
    preds: Vec<Vec<NodeId>>,
}

impl Cfg {
    /// Builds the CFG of `f`.
    pub fn new(f: &Function) -> Self {
        let n_blocks = f.blocks().len();
        let n_nodes = n_blocks + 1;
        let mut succs = vec![Vec::new(); n_nodes];
        let mut preds = vec![Vec::new(); n_nodes];
        let exit = NodeId(n_blocks as u32);
        for (bid, block) in f.iter_blocks() {
            let from = NodeId::block(bid);
            let tos: Vec<NodeId> = match block.term.successors().as_slice() {
                [] => vec![exit],
                ss => ss.iter().map(|s| NodeId::block(*s)).collect(),
            };
            for to in tos {
                succs[from.index()].push(to);
                preds[to.index()].push(from);
            }
        }
        Cfg { n_blocks, entry: NodeId::block(f.entry()), succs, preds }
    }

    /// Number of real blocks (the exit node is extra).
    pub fn n_blocks(&self) -> usize {
        self.n_blocks
    }

    /// Total node count including the virtual exit.
    pub fn n_nodes(&self) -> usize {
        self.n_blocks + 1
    }

    /// The entry node.
    pub fn entry(&self) -> NodeId {
        self.entry
    }

    /// The virtual exit node.
    pub fn exit(&self) -> NodeId {
        NodeId(self.n_blocks as u32)
    }

    /// Successors of a node (the exit node has none).
    pub fn succs(&self, n: NodeId) -> &[NodeId] {
        &self.succs[n.index()]
    }

    /// Predecessors of a node.
    pub fn preds(&self, n: NodeId) -> &[NodeId] {
        &self.preds[n.index()]
    }

    /// All edges, in source-node order.
    pub fn edges(&self) -> Vec<Edge> {
        let mut out = Vec::new();
        for (i, ss) in self.succs.iter().enumerate() {
            for &t in ss {
                out.push(Edge::new(NodeId(i as u32), t));
            }
        }
        out
    }

    /// All nodes in index order (blocks first, then exit).
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.n_nodes() as u32).map(NodeId)
    }

    /// Nodes reachable from the entry, as a boolean mask indexed by node.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.n_nodes()];
        let mut stack = vec![self.entry];
        seen[self.entry.index()] = true;
        while let Some(n) = stack.pop() {
            for &s in self.succs(n) {
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }

    /// Reverse postorder of the nodes reachable from the entry.
    ///
    /// This is the canonical iteration order for forward dataflow fixpoints.
    pub fn reverse_postorder(&self) -> Vec<NodeId> {
        let mut order = self.postorder();
        order.reverse();
        order
    }

    /// Postorder of the nodes reachable from the entry (iterative DFS).
    pub fn postorder(&self) -> Vec<NodeId> {
        let mut visited = vec![false; self.n_nodes()];
        let mut order = Vec::with_capacity(self.n_nodes());
        // Stack entries: (node, next-successor-index).
        let mut stack: Vec<(NodeId, usize)> = vec![(self.entry, 0)];
        visited[self.entry.index()] = true;
        while let Some(&mut (n, ref mut i)) = stack.last_mut() {
            if *i < self.succs(n).len() {
                let s = self.succs(n)[*i];
                *i += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                order.push(n);
                stack.pop();
            }
        }
        order
    }

    /// Whether `to` is reachable from `from` (including `from == to`).
    pub fn path_exists(&self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            return true;
        }
        let mut seen = vec![false; self.n_nodes()];
        let mut stack = vec![from];
        seen[from.index()] = true;
        while let Some(n) = stack.pop() {
            for &s in self.succs(n) {
                if s == to {
                    return true;
                }
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{Cond, Operand};
    use crate::types::{SecurityLabel, Type};
    use crate::CmpOp;

    /// entry → (loop ⇄ body) → exit diamond used across the tests.
    fn loopy() -> crate::Function {
        let mut b = FunctionBuilder::new("loopy");
        let n = b.param("n", Type::Int, SecurityLabel::Low);
        let i = b.local("i", Type::Int);
        b.assign(i, crate::Expr::Operand(Operand::konst(0)));
        let head = b.new_block();
        let body = b.new_block();
        let done = b.new_block();
        b.goto(head);
        b.switch_to(head);
        b.branch(Cond::cmp(CmpOp::Lt, i, n), body, done);
        b.switch_to(body);
        b.add_const(i, i, 1);
        b.goto(head);
        b.switch_to(done);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn structure() {
        let f = loopy();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.n_blocks(), 4);
        assert_eq!(cfg.n_nodes(), 5);
        // Exactly one edge into the exit (from `done`).
        assert_eq!(cfg.preds(cfg.exit()).len(), 1);
        // The loop head has two successors and two predecessors.
        let head = NodeId::block(BlockId::new(1));
        assert_eq!(cfg.succs(head).len(), 2);
        assert_eq!(cfg.preds(head).len(), 2);
    }

    #[test]
    fn reachability_and_orders() {
        let f = loopy();
        let cfg = Cfg::new(&f);
        assert!(cfg.reachable().iter().all(|&r| r));
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo.len(), cfg.n_nodes());
        assert_eq!(rpo[0], cfg.entry());
        // Entry precedes exit in reverse postorder.
        let pos = |n: NodeId| rpo.iter().position(|&m| m == n).unwrap();
        assert!(pos(cfg.entry()) < pos(cfg.exit()));
    }

    #[test]
    fn path_queries() {
        let f = loopy();
        let cfg = Cfg::new(&f);
        assert!(cfg.path_exists(cfg.entry(), cfg.exit()));
        assert!(!cfg.path_exists(cfg.exit(), cfg.entry()));
        assert!(cfg.path_exists(cfg.exit(), cfg.exit()));
    }

    #[test]
    fn edges_enumerated_once() {
        let f = loopy();
        let cfg = Cfg::new(&f);
        let edges = cfg.edges();
        let mut dedup = edges.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(edges.len(), dedup.len());
        // entry→head, head→body, head→done, body→head, done→exit.
        assert_eq!(edges.len(), 5);
    }
}
