//! Value types and security labels.

use std::fmt;

/// The type of an IR value.
///
/// Arrays are one-dimensional arrays of integers; strings and Java byte
/// arrays in the benchmarks are modeled as `Array`. A "nullable" array is an
/// array whose length may be the sentinel `-1` (see
/// [`crate::program::ExternDecl`]); the analyses treat length as an ordinary
/// integer quantity, so nullness is just the constraint `len < 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// A 64-bit signed integer.
    Int,
    /// A boolean, canonically represented as the integers `0` and `1`.
    Bool,
    /// An array of integers (also used for strings and big-integer bit
    /// vectors in the crypto benchmarks).
    Array,
}

impl Type {
    /// Whether values of this type are represented by a single scalar that
    /// the numeric abstract domains track directly.
    pub fn is_scalar(self) -> bool {
        !matches!(self, Type::Array)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => f.write_str("int"),
            Type::Bool => f.write_str("bool"),
            Type::Array => f.write_str("array"),
        }
    }
}

/// The confidentiality label of an input.
///
/// `Low` inputs are public / attacker-controlled ("tainted" in the paper's
/// terminology); `High` inputs are secret. Timing-channel freedom (Sec. 3,
/// Example 6) demands that any two executions agreeing on all `Low` inputs
/// have indistinguishable running times regardless of `High` inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SecurityLabel {
    /// Public, attacker-observable/controllable data.
    Low,
    /// Secret data that must not influence observable running time.
    High,
}

impl SecurityLabel {
    /// `true` for [`SecurityLabel::High`].
    pub fn is_high(self) -> bool {
        matches!(self, SecurityLabel::High)
    }

    /// `true` for [`SecurityLabel::Low`].
    pub fn is_low(self) -> bool {
        matches!(self, SecurityLabel::Low)
    }
}

impl fmt::Display for SecurityLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SecurityLabel::Low => f.write_str("low"),
            SecurityLabel::High => f.write_str("high"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Type::Int.to_string(), "int");
        assert_eq!(Type::Bool.to_string(), "bool");
        assert_eq!(Type::Array.to_string(), "array");
        assert_eq!(SecurityLabel::Low.to_string(), "low");
        assert_eq!(SecurityLabel::High.to_string(), "high");
    }

    #[test]
    fn scalar_classification() {
        assert!(Type::Int.is_scalar());
        assert!(Type::Bool.is_scalar());
        assert!(!Type::Array.is_scalar());
    }

    #[test]
    fn label_predicates() {
        assert!(SecurityLabel::High.is_high());
        assert!(!SecurityLabel::High.is_low());
        assert!(SecurityLabel::Low.is_low());
        assert!(SecurityLabel::Low < SecurityLabel::High);
    }
}
