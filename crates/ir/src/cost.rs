//! The machine cost model.
//!
//! "We currently use a simple machine model in which each bytecode
//! instruction is counted as a single unit." (Sec. 5). This module makes the
//! observer's machine model a first-class, pluggable axis of the analysis:
//!
//! * [`CostModel::Weighted`] — the paper's model generalized to a
//!   per-instruction weight table ([`WeightTable`]); every instruction has
//!   one exact cost, so per-block costs are constants (modulo
//!   value-dependent call summaries).
//! * [`CostModel::CacheAware`] — a microarchitectural observer where the
//!   cost of an array access depends on an abstract L1D cache state
//!   ([`CacheParams`]): accesses the analysis can prove resident are priced
//!   as hits, everything else as a `[hit, miss]` *range*. Per-instruction
//!   costs are therefore [`CostRange`]s, not points.
//!
//! Both models are driven through one stateful [`BlockWalker`]: callers
//! walk each basic block in instruction order and receive per-instruction
//! cost ranges; the walker threads the abstract cache ("must" information:
//! lines provably resident) alongside. The concrete interpreter mirrors the
//! same parameters with a real set-associative LRU cache, and the oracle
//! property tests check that measured concrete costs always land inside the
//! symbolic `[lo, hi]` trail bounds under the *same* model.
//!
//! # Cache-model soundness
//!
//! The abstract cache is a per-block must-set: an LRU-ordered list of at
//! most `ways` abstract line keys `(array var, line index)`. The invariant
//! is that a key at LRU position `p` (0 = most recent) has seen at most `p`
//! distinct cache lines accessed since its own last access; with `p <
//! ways`, a `ways`-associative LRU set cannot have evicted it, for *any*
//! set mapping (the worst case — every line falling into one set — is
//! exactly the abstract capacity). Three rules keep the invariant:
//!
//! * keys invalidated by a variable write are *replaced by opaque
//!   placeholders*, never removed — removal would rewind the ages of older
//!   entries and overclaim residency;
//! * distinct abstract keys over-count distinct concrete lines (aliasing
//!   two keys onto one line only makes the concrete cache retain more), so
//!   the position bound is conservative;
//! * calls clear the must-set entirely (claiming nothing is always sound),
//!   and every block starts from the empty must-set.
//!
//! Lower bounds price every access as a hit and upper bounds price every
//! non-must access as a miss, so `lo ≤ hi` needs only `hit ≤ miss`, which
//! [`CostModel::from_json`] validates.

use crate::function::{Block, Function, VarId};
use crate::inst::{CallCost, Expr, Inst, Operand, Terminator};
use crate::json::Json;

/// Per-instruction weights of the simple (exact) machine model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightTable {
    /// Cost of an assignment (including array reads under exact models).
    pub assign: u64,
    /// Cost of an array element write (under exact models).
    pub array_set: u64,
    /// Cost of a havoc (unknown library read).
    pub havoc: u64,
    /// Cost of evaluating a conditional branch.
    pub branch: u64,
    /// Cost of an unconditional jump.
    pub goto: u64,
    /// Cost of a return.
    pub ret: u64,
}

impl WeightTable {
    /// The paper's unit weights: one unit per instruction, jumps free.
    pub fn unit() -> Self {
        WeightTable { assign: 1, array_set: 1, havoc: 1, branch: 1, goto: 0, ret: 1 }
    }

    /// A non-trivial latency-shaped table: memory writes and havocs
    /// (library reads) cost more than register arithmetic.
    pub fn weighted() -> Self {
        WeightTable { assign: 1, array_set: 2, havoc: 3, branch: 2, goto: 0, ret: 1 }
    }
}

/// Parameters of the cache-aware observer: an abstract (and, in the
/// interpreter, concrete) `sets × ways` set-associative LRU data cache over
/// array elements, `line` elements per cache line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheParams {
    /// Weights of every non-memory instruction.
    pub base: WeightTable,
    /// Cost of an array access that hits in the cache.
    pub hit: u64,
    /// Cost of an array access that misses.
    pub miss: u64,
    /// Associativity. The abstract must-cache holds at most this many
    /// lines — sound for any set mapping.
    pub ways: usize,
    /// Number of sets (concrete interpreter only; the abstract model
    /// assumes the worst case of a single set).
    pub sets: usize,
    /// Array elements per cache line.
    pub line: u64,
}

impl Default for CacheParams {
    fn default() -> Self {
        CacheParams { base: WeightTable::unit(), hit: 1, miss: 8, ways: 4, sets: 64, line: 4 }
    }
}

/// The machine model assigning observable cost to instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CostModel {
    /// Exact per-instruction weights.
    Weighted(WeightTable),
    /// Array-access cost depends on abstract L1D cache state.
    CacheAware(CacheParams),
}

/// The `[lo, hi]` cost of one instruction. Exact models always have
/// `lo == hi`; the cache model widens unclassified array accesses to
/// `[hit, miss]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostRange {
    /// Least possible cost.
    pub lo: u64,
    /// Greatest possible cost.
    pub hi: u64,
}

impl CostRange {
    /// A point cost.
    pub fn exact(c: u64) -> CostRange {
        CostRange { lo: c, hi: c }
    }

    /// Whether this is a point cost.
    pub fn is_exact(&self) -> bool {
        self.lo == self.hi
    }
}

impl CostModel {
    /// The paper's unit model: one unit per instruction, jumps free.
    pub fn unit() -> Self {
        CostModel::Weighted(WeightTable::unit())
    }

    /// The weighted preset: [`WeightTable::weighted`].
    pub fn weighted() -> Self {
        CostModel::Weighted(WeightTable::weighted())
    }

    /// The cache-aware preset: unit base weights with
    /// [`CacheParams::default`] cache geometry.
    pub fn cache_aware() -> Self {
        CostModel::CacheAware(CacheParams::default())
    }

    /// Every shipped preset with its wire name, in CLI order. Harnesses
    /// (the oracle CI gate, ablations) sweep this list.
    pub fn presets() -> [(&'static str, CostModel); 3] {
        [
            ("unit", CostModel::unit()),
            ("weighted", CostModel::weighted()),
            ("cache", CostModel::cache_aware()),
        ]
    }

    /// The weights of non-memory instructions.
    pub fn weights(&self) -> &WeightTable {
        match self {
            CostModel::Weighted(t) => t,
            CostModel::CacheAware(p) => &p.base,
        }
    }

    /// The cache geometry, for cache-aware models.
    pub fn cache_params(&self) -> Option<&CacheParams> {
        match self {
            CostModel::CacheAware(p) => Some(p),
            CostModel::Weighted(_) => None,
        }
    }

    /// A fresh per-block walker. Create one per basic block (or call
    /// [`BlockWalker::reset`] at each block entry): the abstract cache
    /// must-set starts empty at block entry.
    pub fn walker(&self) -> BlockWalker<'_> {
        BlockWalker { model: self, cache: Vec::new() }
    }

    /// The cost of a terminator (model-independent: terminators never
    /// touch memory).
    pub fn term_cost(&self, term: &Terminator) -> u64 {
        let t = self.weights();
        match term {
            Terminator::Goto(_) => t.goto,
            Terminator::Branch { .. } => t.branch,
            Terminator::Return(_) => t.ret,
        }
    }

    /// The cost of a whole block when it is a single constant.
    ///
    /// Returns `None` if the block contains a call with a value-dependent
    /// (linear) summary, or any instruction whose cost is a genuine range
    /// under this model; such blocks need symbolic treatment.
    pub fn block_cost_const(&self, block: &Block) -> Option<u64> {
        let mut total = self.term_cost(&block.term);
        let mut walker = self.walker();
        for inst in &block.insts {
            match walker.inst_cost(inst) {
                Ok(r) if r.is_exact() => total += r.lo,
                Ok(_) => return None,
                Err(CallCost::Const(c)) => total += c,
                Err(CallCost::Linear { .. }) => return None,
            }
        }
        Some(total)
    }

    /// Whether every instruction of `f` has a point cost under this model
    /// (linear call summaries count as exact: they are symbolic but not
    /// ranges). Exact functions can be priced by constant counter
    /// instrumentation (the self-composition baseline); inexact ones
    /// cannot.
    pub fn exact_for(&self, f: &Function) -> bool {
        if matches!(self, CostModel::Weighted(_)) {
            return true;
        }
        f.blocks().iter().all(|block| {
            let mut walker = self.walker();
            block.insts.iter().all(|inst| match walker.inst_cost(inst) {
                Ok(r) => r.is_exact(),
                Err(_) => true,
            })
        })
    }

    /// Parses a preset name (the `--cost-model` / wire string form).
    fn preset(name: &str) -> Option<CostModel> {
        CostModel::presets().into_iter().find(|(n, _)| *n == name).map(|(_, m)| m)
    }

    /// Serializes to the wire form: the preset name when the model matches
    /// a preset, else a `{"kind": ...}` object with every parameter.
    pub fn to_json(&self) -> Json {
        if let Some((name, _)) = CostModel::presets().into_iter().find(|(_, m)| m == self) {
            return Json::Str(name.to_string());
        }
        let table = |t: &WeightTable, pairs: &mut Vec<(String, Json)>| {
            pairs.push(("assign".to_string(), Json::from(t.assign)));
            pairs.push(("array_set".to_string(), Json::from(t.array_set)));
            pairs.push(("havoc".to_string(), Json::from(t.havoc)));
            pairs.push(("branch".to_string(), Json::from(t.branch)));
            pairs.push(("goto".to_string(), Json::from(t.goto)));
            pairs.push(("ret".to_string(), Json::from(t.ret)));
        };
        let mut pairs = Vec::new();
        match self {
            CostModel::Weighted(t) => {
                pairs.push(("kind".to_string(), Json::from("weighted")));
                table(t, &mut pairs);
            }
            CostModel::CacheAware(p) => {
                pairs.push(("kind".to_string(), Json::from("cache")));
                pairs.push(("hit".to_string(), Json::from(p.hit)));
                pairs.push(("miss".to_string(), Json::from(p.miss)));
                pairs.push(("ways".to_string(), Json::from(p.ways)));
                pairs.push(("sets".to_string(), Json::from(p.sets)));
                pairs.push(("line".to_string(), Json::from(p.line)));
                table(&p.base, &mut pairs);
            }
        }
        Json::Obj(pairs)
    }

    /// Parses the wire form: a preset name string, or a `{"kind": ...}`
    /// object overriding preset parameters. Unknown names, unknown members,
    /// and malformed or unsound parameter values (`miss < hit`, zero cache
    /// geometry) are rejected with a message.
    pub fn from_json(doc: &Json) -> Result<CostModel, String> {
        match doc {
            Json::Str(name) => CostModel::preset(name).ok_or_else(|| {
                format!("unknown cost model \"{name}\": expected unit|weighted|cache")
            }),
            Json::Obj(pairs) => {
                let kind = pairs
                    .iter()
                    .find(|(k, _)| k == "kind")
                    .ok_or("cost model object needs a \"kind\" member")?
                    .1
                    .as_str()
                    .ok_or("cost model \"kind\" must be a string")?;
                let num = |key: &str, value: &Json| {
                    value.as_u64().ok_or(format!(
                        "cost model member \"{key}\" must be a non-negative integer"
                    ))
                };
                match kind {
                    "weighted" => {
                        let mut t = WeightTable::weighted();
                        for (key, value) in pairs {
                            match key.as_str() {
                                "kind" => {}
                                "assign" => t.assign = num(key, value)?,
                                "array_set" => t.array_set = num(key, value)?,
                                "havoc" => t.havoc = num(key, value)?,
                                "branch" => t.branch = num(key, value)?,
                                "goto" => t.goto = num(key, value)?,
                                "ret" => t.ret = num(key, value)?,
                                other => {
                                    return Err(format!("unknown cost model member \"{other}\""))
                                }
                            }
                        }
                        Ok(CostModel::Weighted(t))
                    }
                    "cache" => {
                        let mut p = CacheParams::default();
                        for (key, value) in pairs {
                            match key.as_str() {
                                "kind" => {}
                                "hit" => p.hit = num(key, value)?,
                                "miss" => p.miss = num(key, value)?,
                                "ways" => p.ways = num(key, value)? as usize,
                                "sets" => p.sets = num(key, value)? as usize,
                                "line" => p.line = num(key, value)?,
                                "assign" => p.base.assign = num(key, value)?,
                                "array_set" => p.base.array_set = num(key, value)?,
                                "havoc" => p.base.havoc = num(key, value)?,
                                "branch" => p.base.branch = num(key, value)?,
                                "goto" => p.base.goto = num(key, value)?,
                                "ret" => p.base.ret = num(key, value)?,
                                other => {
                                    return Err(format!("unknown cost model member \"{other}\""))
                                }
                            }
                        }
                        if p.miss < p.hit {
                            return Err(format!(
                                "cache cost model needs miss >= hit (got hit={}, miss={})",
                                p.hit, p.miss
                            ));
                        }
                        if p.ways == 0 || p.sets == 0 || p.line == 0 {
                            return Err(
                                "cache cost model needs ways, sets, and line >= 1".to_string()
                            );
                        }
                        if p.ways > 64 || p.sets > 4096 || p.line > 1024 {
                            return Err(
                                "cache cost model caps: ways <= 64, sets <= 4096, line <= 1024"
                                    .to_string(),
                            );
                        }
                        Ok(CostModel::CacheAware(p))
                    }
                    other => {
                        Err(format!("unknown cost model kind \"{other}\": expected weighted|cache"))
                    }
                }
            }
            _ => Err("cost model must be a name string or an object".to_string()),
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::unit()
    }
}

impl std::str::FromStr for CostModel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        CostModel::preset(s)
            .ok_or_else(|| format!("unknown cost model `{s}` (expected unit|weighted|cache)"))
    }
}

/// Prints the preset name when the model matches one, else the full JSON
/// parameterization — injective up to semantic equality, so cache
/// fingerprints can embed it directly.
impl std::fmt::Display for CostModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.to_json() {
            Json::Str(name) => f.write_str(&name),
            doc => write!(f, "{doc}"),
        }
    }
}

/// One abstract cache line the walker can prove resident: a precise
/// `(array, line)` key, or an opaque placeholder holding the LRU position
/// of a line whose identity was invalidated.
#[derive(Debug, Clone, PartialEq, Eq)]
enum AbstractLine {
    Known { arr: VarId, index: LineKey },
    Unknown,
}

/// A syntactic cache-line index: a constant element index normalized to
/// its line number, or an (unmodified-since) index variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LineKey {
    Line(i64),
    Var(VarId),
}

/// Walks one basic block in instruction order, pricing each instruction
/// under the model and threading the abstract cache must-set.
#[derive(Debug)]
pub struct BlockWalker<'m> {
    model: &'m CostModel,
    /// Most-recently-used first; at most `ways` entries.
    cache: Vec<AbstractLine>,
}

impl BlockWalker<'_> {
    /// Resets to block-entry state (empty must-set).
    pub fn reset(&mut self) {
        self.cache.clear();
    }

    /// The `[lo, hi]` cost of the next instruction, updating the abstract
    /// cache state. `Call` costs come from their summaries and are returned
    /// as `Err(cost)` since they can depend on argument values (the call's
    /// state effects — clearing the must-set, invalidating its
    /// destination — are still applied).
    pub fn inst_cost(&mut self, inst: &Inst) -> Result<CostRange, CallCost> {
        let CostModel::CacheAware(params) = self.model else {
            let t = self.model.weights();
            return match inst {
                Inst::Assign { .. } => Ok(CostRange::exact(t.assign)),
                Inst::ArraySet { .. } => Ok(CostRange::exact(t.array_set)),
                Inst::Call { cost, .. } => Err(*cost),
                Inst::Nop => Ok(CostRange::exact(0)),
                Inst::Tick(n) => Ok(CostRange::exact(*n)),
                Inst::Havoc { .. } => Ok(CostRange::exact(t.havoc)),
            };
        };
        match inst {
            Inst::Assign { dst, expr } => {
                let r = match expr {
                    Expr::ArrayGet(arr, index) => self.access(params, *arr, *index),
                    _ => CostRange::exact(params.base.assign),
                };
                self.kill(*dst);
                Ok(r)
            }
            Inst::ArraySet { arr, index, .. } => Ok(self.access(params, *arr, *index)),
            Inst::Call { dst, cost, .. } => {
                // An extern call's memory behavior is unknown: claim
                // nothing afterwards.
                self.cache.clear();
                if let Some(d) = dst {
                    self.kill(*d);
                }
                Err(*cost)
            }
            Inst::Nop => Ok(CostRange::exact(0)),
            Inst::Tick(n) => Ok(CostRange::exact(*n)),
            Inst::Havoc { dst } => {
                self.kill(*dst);
                Ok(CostRange::exact(params.base.havoc))
            }
        }
    }

    /// Prices one array access and updates the must-set.
    fn access(&mut self, params: &CacheParams, arr: VarId, index: Operand) -> CostRange {
        let key = match index {
            Operand::Const(c) => LineKey::Line(c.div_euclid(params.line as i64)),
            Operand::Var(v) => LineKey::Var(v),
        };
        let hit_pos = self.cache.iter().position(
            |l| matches!(l, AbstractLine::Known { arr: a, index: i } if *a == arr && *i == key),
        );
        match hit_pos {
            Some(p) => {
                // Must-hit: provably resident. Promote to most-recent,
                // mirroring the concrete LRU.
                let line = self.cache.remove(p);
                self.cache.insert(0, line);
                CostRange::exact(params.hit)
            }
            None => {
                // Unclassified: may hit (a line inserted in an earlier
                // block, or aliased) or miss. Insert as most-recent; the
                // eviction candidate is the least-recent entry, exactly as
                // in a ways-associative LRU set.
                self.cache.insert(0, AbstractLine::Known { arr, index: key });
                self.cache.truncate(params.ways);
                CostRange { lo: params.hit, hi: params.miss }
            }
        }
    }

    /// Invalidates every key mentioning a written variable. Entries are
    /// replaced by [`AbstractLine::Unknown`] placeholders, never removed:
    /// removal would rewind the LRU ages of older entries and overclaim
    /// residency.
    fn kill(&mut self, written: VarId) {
        for line in &mut self.cache {
            if let AbstractLine::Known { arr, index } = line {
                let names = *arr == written || matches!(index, LineKey::Var(v) if *v == written);
                if names {
                    *line = AbstractLine::Unknown;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::VarId;
    use crate::inst::{Expr, Operand};
    use crate::BlockId;

    #[test]
    fn unit_model_counts_instructions() {
        let m = CostModel::unit();
        let block = Block {
            insts: vec![
                Inst::Assign { dst: VarId::new(0), expr: Expr::Operand(Operand::konst(1)) },
                Inst::Tick(5),
                Inst::Nop,
            ],
            term: Terminator::Return(None),
        };
        // assign(1) + tick(5) + nop(0) + terminator(1)
        assert_eq!(m.block_cost_const(&block), Some(7));
    }

    #[test]
    fn linear_call_defers_to_symbolic() {
        let m = CostModel::unit();
        let block = Block {
            insts: vec![Inst::Call {
                dst: None,
                callee: "hash".into(),
                args: vec![Operand::konst(0)],
                cost: CallCost::Linear { arg: 0, coeff: 2, constant: 1 },
            }],
            term: Terminator::Return(None),
        };
        assert_eq!(m.block_cost_const(&block), None);
    }

    #[test]
    fn const_call_is_counted() {
        let m = CostModel::unit();
        let block = Block {
            insts: vec![Inst::Call {
                dst: None,
                callee: "md5".into(),
                args: vec![],
                cost: CallCost::Const(500),
            }],
            term: Terminator::Goto(BlockId::new(0)),
        };
        assert_eq!(m.block_cost_const(&block), Some(500));
    }

    #[test]
    fn weighted_model_prices_by_table() {
        let m = CostModel::weighted();
        let block = Block {
            insts: vec![
                Inst::Assign { dst: VarId::new(0), expr: Expr::Operand(Operand::konst(1)) },
                Inst::ArraySet {
                    arr: VarId::new(1),
                    index: Operand::konst(0),
                    value: Operand::konst(9),
                },
                Inst::Havoc { dst: VarId::new(0) },
            ],
            term: Terminator::Branch {
                cond: crate::inst::Cond::Nondet,
                then_bb: BlockId::new(0),
                else_bb: BlockId::new(0),
            },
        };
        // assign(1) + array_set(2) + havoc(3) + branch(2)
        assert_eq!(m.block_cost_const(&block), Some(8));
    }

    // -- cache-aware walker ------------------------------------------------

    fn get(dst: u32, arr: u32, index: Operand) -> Inst {
        Inst::Assign { dst: VarId::new(dst), expr: Expr::ArrayGet(VarId::new(arr), index) }
    }

    #[test]
    fn repeated_access_becomes_must_hit() {
        let m = CostModel::cache_aware();
        let p = m.cache_params().unwrap();
        let mut w = m.walker();
        // First touch of a[0]: unclassified, [hit, miss].
        let first = w.inst_cost(&get(1, 0, Operand::konst(0))).unwrap();
        assert_eq!(first, CostRange { lo: p.hit, hi: p.miss });
        // Second touch of the same line: must-hit, exact.
        let second = w.inst_cost(&get(1, 0, Operand::konst(0))).unwrap();
        assert_eq!(second, CostRange::exact(p.hit));
        // Same line via a different in-line element index.
        let same_line = w.inst_cost(&get(1, 0, Operand::konst(p.line as i64 - 1))).unwrap();
        assert_eq!(same_line, CostRange::exact(p.hit));
        // A different line of the same array is unclassified again.
        let other = w.inst_cost(&get(1, 0, Operand::konst(p.line as i64))).unwrap();
        assert!(!other.is_exact());
    }

    #[test]
    fn writes_to_index_var_invalidate_without_rewinding_ages() {
        let m = CostModel::cache_aware();
        let p = m.cache_params().unwrap();
        let mut w = m.walker();
        let i = VarId::new(5);
        // a[i] cached under the variable key.
        w.inst_cost(&get(1, 0, Operand::Var(i))).unwrap();
        assert_eq!(w.inst_cost(&get(1, 0, Operand::Var(i))).unwrap(), CostRange::exact(p.hit));
        // i = i + 1 invalidates the key...
        w.inst_cost(&Inst::Assign {
            dst: i,
            expr: Expr::Operand(Operand::Var(i)), // shape irrelevant; dst is what kills
        })
        .unwrap();
        // ...leaving an opaque placeholder in place (removal would rewind
        // the LRU ages of older entries)...
        assert!(w.cache.contains(&AbstractLine::Unknown));
        // ...so the next a[i] cannot be claimed a hit.
        assert!(!w.inst_cost(&get(1, 0, Operand::Var(i))).unwrap().is_exact());
    }

    #[test]
    fn capacity_evicts_least_recent() {
        let m = CostModel::cache_aware();
        let p = m.cache_params().unwrap();
        let mut w = m.walker();
        // Fill all ways with distinct lines of array 0.
        for l in 0..p.ways as i64 {
            w.inst_cost(&get(1, 0, Operand::konst(l * p.line as i64))).unwrap();
        }
        // Line 0 is now least-recent; one more distinct line evicts it.
        w.inst_cost(&get(1, 0, Operand::konst(p.ways as i64 * p.line as i64))).unwrap();
        assert!(
            !w.inst_cost(&get(1, 0, Operand::konst(0))).unwrap().is_exact(),
            "evicted line must not be claimed resident"
        );
        // The most recent line survives and still must-hits.
        let recent = p.ways as i64 * p.line as i64;
        assert_eq!(
            w.inst_cost(&get(1, 0, Operand::konst(recent))).unwrap(),
            CostRange::exact(p.hit)
        );
    }

    #[test]
    fn calls_clear_the_must_set() {
        let m = CostModel::cache_aware();
        let mut w = m.walker();
        w.inst_cost(&get(1, 0, Operand::konst(0))).unwrap();
        let _ = w.inst_cost(&Inst::Call {
            dst: None,
            callee: "md5".into(),
            args: vec![],
            cost: CallCost::Const(5),
        });
        assert!(!w.inst_cost(&get(1, 0, Operand::konst(0))).unwrap().is_exact());
    }

    #[test]
    fn join_soundness_reset_never_under_approximates() {
        // The per-block reset is the join with ⊤-uncertainty: after it, no
        // access may be priced better than [hit, miss] until re-proven.
        let m = CostModel::cache_aware();
        let p = m.cache_params().unwrap();
        let mut w = m.walker();
        w.inst_cost(&get(1, 0, Operand::konst(0))).unwrap();
        w.reset();
        let r = w.inst_cost(&get(1, 0, Operand::konst(0))).unwrap();
        assert_eq!(r, CostRange { lo: p.hit, hi: p.miss });
        // And in general every cache-model range is hit-bounded below:
        // lo can never drop under the hit cost, hi never under lo.
        assert!(r.lo >= p.hit && r.hi >= r.lo);
    }

    #[test]
    fn exactness_analysis_distinguishes_memory_functions() {
        let src_mem =
            Block { insts: vec![get(1, 0, Operand::konst(0))], term: Terminator::Return(None) };
        let unit = CostModel::unit();
        let cache = CostModel::cache_aware();
        assert_eq!(unit.block_cost_const(&src_mem), Some(2));
        assert_eq!(cache.block_cost_const(&src_mem), None, "unclassified access is a range");
    }

    // -- wire format -------------------------------------------------------

    #[test]
    fn presets_roundtrip_as_names() {
        for (name, model) in CostModel::presets() {
            assert_eq!(model.to_json(), Json::Str(name.to_string()));
            assert_eq!(CostModel::from_json(&model.to_json()).unwrap(), model);
            assert_eq!(name.parse::<CostModel>().unwrap(), model);
            assert_eq!(model.to_string(), name);
        }
    }

    #[test]
    fn custom_models_roundtrip_as_objects() {
        let mut t = WeightTable::weighted();
        t.branch = 9;
        let custom = CostModel::Weighted(t);
        let doc = custom.to_json();
        assert!(matches!(doc, Json::Obj(_)));
        assert_eq!(CostModel::from_json(&doc).unwrap(), custom);

        let p = CacheParams { miss: 20, ways: 2, ..CacheParams::default() };
        let custom = CostModel::CacheAware(p);
        let doc = custom.to_json();
        assert_eq!(CostModel::from_json(&doc).unwrap(), custom);
        // Display falls back to the JSON text and parses back.
        assert_eq!(Json::parse(&custom.to_string()).unwrap(), doc);
    }

    #[test]
    fn malformed_models_are_rejected_with_messages() {
        for (text, needle) in [
            (r#""quantum""#, "unknown cost model"),
            (r#"{"assign": 1}"#, "kind"),
            (r#"{"kind": "cache", "miss": 0}"#, "miss >= hit"),
            (r#"{"kind": "cache", "ways": 0}"#, ">= 1"),
            (r#"{"kind": "cache", "ways": 1000}"#, "caps"),
            (r#"{"kind": "weighted", "assign": -3}"#, "non-negative"),
            (r#"{"kind": "weighted", "frobnicate": 1}"#, "unknown cost model member"),
            (r#"{"kind": "tarot"}"#, "unknown cost model kind"),
            ("[1]", "name string or an object"),
        ] {
            let doc = Json::parse(text).unwrap();
            let err = CostModel::from_json(&doc).unwrap_err();
            assert!(err.contains(needle), "{text} -> {err}");
        }
        assert!("l2".parse::<CostModel>().is_err());
    }
}
