//! The machine cost model.
//!
//! "We currently use a simple machine model in which each bytecode
//! instruction is counted as a single unit." (Sec. 5). This module makes the
//! per-instruction weights explicit and configurable so ablation experiments
//! can vary them.

use crate::function::Block;
use crate::inst::{CallCost, Inst, Terminator};

/// Per-instruction weights of the simple machine model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Cost of an assignment (including array reads).
    pub assign: u64,
    /// Cost of an array element write.
    pub array_set: u64,
    /// Cost of a havoc (unknown library read).
    pub havoc: u64,
    /// Cost of evaluating a conditional branch.
    pub branch: u64,
    /// Cost of an unconditional jump.
    pub goto: u64,
    /// Cost of a return.
    pub ret: u64,
}

impl CostModel {
    /// The paper's unit model: one unit per instruction, jumps free.
    pub fn unit() -> Self {
        CostModel { assign: 1, array_set: 1, havoc: 1, branch: 1, goto: 0, ret: 1 }
    }

    /// The cost of one instruction; `Call` costs come from their summary and
    /// are returned as `Err(cost)` since they can depend on argument values.
    pub fn inst_cost(&self, inst: &Inst) -> Result<u64, CallCost> {
        match inst {
            Inst::Assign { .. } => Ok(self.assign),
            Inst::ArraySet { .. } => Ok(self.array_set),
            Inst::Call { cost, .. } => Err(*cost),
            Inst::Nop => Ok(0),
            Inst::Tick(n) => Ok(*n),
            Inst::Havoc { .. } => Ok(self.havoc),
        }
    }

    /// The cost of a terminator.
    pub fn term_cost(&self, term: &Terminator) -> u64 {
        match term {
            Terminator::Goto(_) => self.goto,
            Terminator::Branch { .. } => self.branch,
            Terminator::Return(_) => self.ret,
        }
    }

    /// The cost of a whole block assuming all call summaries are constant.
    ///
    /// Returns `None` if the block contains a call with a value-dependent
    /// (linear) summary; such blocks need symbolic treatment.
    pub fn block_cost_const(&self, block: &Block) -> Option<u64> {
        let mut total = self.term_cost(&block.term);
        for inst in &block.insts {
            match self.inst_cost(inst) {
                Ok(c) => total += c,
                Err(CallCost::Const(c)) => total += c,
                Err(CallCost::Linear { .. }) => return None,
            }
        }
        Some(total)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::unit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::VarId;
    use crate::inst::{Expr, Operand};

    #[test]
    fn unit_model_counts_instructions() {
        let m = CostModel::unit();
        let block = Block {
            insts: vec![
                Inst::Assign { dst: VarId::new(0), expr: Expr::Operand(Operand::konst(1)) },
                Inst::Tick(5),
                Inst::Nop,
            ],
            term: Terminator::Return(None),
        };
        // assign(1) + tick(5) + nop(0) + terminator(1)
        assert_eq!(m.block_cost_const(&block), Some(7));
    }

    #[test]
    fn linear_call_defers_to_symbolic() {
        let m = CostModel::unit();
        let block = Block {
            insts: vec![Inst::Call {
                dst: None,
                callee: "hash".into(),
                args: vec![Operand::konst(0)],
                cost: CallCost::Linear { arg: 0, coeff: 2, constant: 1 },
            }],
            term: Terminator::Return(None),
        };
        assert_eq!(m.block_cost_const(&block), None);
    }

    #[test]
    fn const_call_is_counted() {
        let m = CostModel::unit();
        let block = Block {
            insts: vec![Inst::Call {
                dst: None,
                callee: "md5".into(),
                args: vec![],
                cost: CallCost::Const(500),
            }],
            term: Terminator::Goto(crate::BlockId::new(0)),
        };
        assert_eq!(m.block_cost_const(&block), Some(500));
    }
}
