//! Incremental construction of [`Function`]s.

use crate::function::{Block, BlockId, Function, Param, VarId, VarInfo};
use crate::inst::{CallCost, Cond, Expr, Inst, Operand, Terminator};
use crate::types::{SecurityLabel, Type};
use crate::BinOp;

/// A builder for [`Function`]s.
///
/// Blocks are created with [`FunctionBuilder::new_block`] and filled by
/// switching the *current block* with [`FunctionBuilder::switch_to`].
/// Instruction helpers append to the current block; terminator helpers
/// (`goto`, `branch`, `ret`) seal it.
///
/// # Panics
///
/// The builder panics on misuse: appending to a sealed block, finishing with
/// unsealed blocks, or violating [`Function::validate`].
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    params: Vec<Param>,
    vars: Vec<VarInfo>,
    blocks: Vec<Option<BlockInProgress>>,
    finished: Vec<Option<Block>>,
    current: BlockId,
    ret_ty: Option<Type>,
}

#[derive(Debug, Default)]
struct BlockInProgress {
    insts: Vec<Inst>,
}

impl FunctionBuilder {
    /// Starts building a function named `name`. Block 0 is the entry and is
    /// the initial current block.
    pub fn new(name: impl Into<String>) -> Self {
        FunctionBuilder {
            name: name.into(),
            params: Vec::new(),
            vars: Vec::new(),
            blocks: vec![Some(BlockInProgress::default())],
            finished: vec![None],
            current: BlockId::new(0),
            ret_ty: None,
        }
    }

    /// Declares the function's return type.
    pub fn returns(&mut self, ty: Type) -> &mut Self {
        self.ret_ty = Some(ty);
        self
    }

    /// Declares a parameter. Parameters must be declared before any locals.
    ///
    /// # Panics
    ///
    /// Panics if a local was already declared.
    pub fn param(&mut self, name: impl Into<String>, ty: Type, label: SecurityLabel) -> VarId {
        assert_eq!(self.params.len(), self.vars.len(), "parameters must precede locals");
        let var = VarId::new(self.vars.len() as u32);
        self.vars.push(VarInfo { name: name.into(), ty });
        self.params.push(Param { var, label });
        var
    }

    /// Declares a local variable.
    pub fn local(&mut self, name: impl Into<String>, ty: Type) -> VarId {
        let var = VarId::new(self.vars.len() as u32);
        self.vars.push(VarInfo { name: name.into(), ty });
        var
    }

    /// Declares a fresh temporary of type `ty`.
    pub fn temp(&mut self, ty: Type) -> VarId {
        let name = format!("%t{}", self.vars.len());
        self.local(name, ty)
    }

    /// Creates a new, empty, unsealed block and returns its id without
    /// changing the current block.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId::new(self.blocks.len() as u32);
        self.blocks.push(Some(BlockInProgress::default()));
        self.finished.push(None);
        id
    }

    /// Makes `block` the current block for subsequent instructions.
    ///
    /// # Panics
    ///
    /// Panics if `block` is already sealed.
    pub fn switch_to(&mut self, block: BlockId) {
        assert!(self.blocks[block.index()].is_some(), "block {block} is already sealed");
        self.current = block;
    }

    /// The current block id.
    pub fn current(&self) -> BlockId {
        self.current
    }

    fn push(&mut self, inst: Inst) {
        let cur = self.blocks[self.current.index()]
            .as_mut()
            .unwrap_or_else(|| panic!("appending to sealed block"));
        cur.insts.push(inst);
    }

    fn seal(&mut self, term: Terminator) {
        let idx = self.current.index();
        let bip = self.blocks[idx].take().unwrap_or_else(|| panic!("block {idx} sealed twice"));
        self.finished[idx] = Some(Block { insts: bip.insts, term });
    }

    // ---- instruction helpers -------------------------------------------

    /// Appends `dst = expr`.
    pub fn assign(&mut self, dst: VarId, expr: Expr) {
        self.push(Inst::Assign { dst, expr });
    }

    /// Appends `dst = op` for an operand copy.
    pub fn copy(&mut self, dst: VarId, op: impl Into<Operand>) {
        self.push(Inst::Assign { dst, expr: Expr::Operand(op.into()) });
    }

    /// Appends `dst = a <op> b`.
    pub fn binop(&mut self, dst: VarId, op: BinOp, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.push(Inst::Assign { dst, expr: Expr::Binary(op, a.into(), b.into()) });
    }

    /// Appends `dst = src + k` (commonly `i = i + 1`).
    pub fn add_const(&mut self, dst: VarId, src: VarId, k: i64) {
        self.binop(dst, BinOp::Add, src, Operand::konst(k));
    }

    /// Appends `dst = len(arr)`.
    pub fn array_len(&mut self, dst: VarId, arr: VarId) {
        self.push(Inst::Assign { dst, expr: Expr::ArrayLen(arr) });
    }

    /// Appends `dst = arr[idx]`.
    pub fn array_get(&mut self, dst: VarId, arr: VarId, idx: impl Into<Operand>) {
        self.push(Inst::Assign { dst, expr: Expr::ArrayGet(arr, idx.into()) });
    }

    /// Appends `arr[idx] = value`.
    pub fn array_set(&mut self, arr: VarId, idx: impl Into<Operand>, value: impl Into<Operand>) {
        self.push(Inst::ArraySet { arr, index: idx.into(), value: value.into() });
    }

    /// Appends a call to an external function.
    pub fn call(
        &mut self,
        dst: Option<VarId>,
        callee: impl Into<String>,
        args: Vec<Operand>,
        cost: CallCost,
    ) {
        self.push(Inst::Call { dst, callee: callee.into(), args, cost });
    }

    /// Appends `tick(n)`.
    pub fn tick(&mut self, n: u64) {
        self.push(Inst::Tick(n));
    }

    /// Appends `dst = havoc`.
    pub fn havoc(&mut self, dst: VarId) {
        self.push(Inst::Havoc { dst });
    }

    // ---- terminator helpers --------------------------------------------

    /// Seals the current block with `goto target`.
    pub fn goto(&mut self, target: BlockId) {
        self.seal(Terminator::Goto(target));
    }

    /// Seals the current block with a conditional branch.
    pub fn branch(&mut self, cond: Cond, then_bb: BlockId, else_bb: BlockId) {
        self.seal(Terminator::Branch { cond, then_bb, else_bb });
    }

    /// Seals the current block with a return.
    pub fn ret(&mut self, value: Option<Operand>) {
        self.seal(Terminator::Return(value));
    }

    /// Finishes construction.
    ///
    /// # Panics
    ///
    /// Panics if any created block was never sealed, or if the assembled
    /// function fails validation.
    pub fn finish(self) -> Function {
        let mut blocks = Vec::with_capacity(self.finished.len());
        for (i, b) in self.finished.into_iter().enumerate() {
            match b {
                Some(block) => blocks.push(block),
                None => panic!("block bb{i} of `{}` was never sealed", self.name),
            }
        }
        Function::from_parts(
            self.name,
            self.params,
            self.vars,
            blocks,
            BlockId::new(0),
            self.ret_ty,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CmpOp;

    #[test]
    fn builds_straightline() {
        let mut b = FunctionBuilder::new("f");
        let x = b.param("x", Type::Int, SecurityLabel::Low);
        let y = b.local("y", Type::Int);
        b.binop(y, BinOp::Mul, x, Operand::konst(2));
        b.ret(Some(Operand::Var(y)));
        let f = b.finish();
        assert_eq!(f.blocks().len(), 1);
        assert_eq!(f.block(BlockId::new(0)).insts.len(), 1);
        assert_eq!(f.name(), "f");
    }

    #[test]
    fn builds_branching() {
        let mut b = FunctionBuilder::new("g");
        let x = b.param("x", Type::Int, SecurityLabel::High);
        let t = b.new_block();
        let e = b.new_block();
        b.branch(Cond::cmp(CmpOp::Eq, x, Operand::konst(0)), t, e);
        b.switch_to(t);
        b.ret(None);
        b.switch_to(e);
        b.ret(None);
        let f = b.finish();
        assert!(f.block(f.entry()).term.is_branch());
        assert!(f.has_high_input());
    }

    #[test]
    #[should_panic(expected = "never sealed")]
    fn unsealed_block_panics() {
        let mut b = FunctionBuilder::new("h");
        let _ = b.new_block();
        b.ret(None);
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "sealed")]
    fn append_after_seal_panics() {
        let mut b = FunctionBuilder::new("h");
        b.ret(None);
        b.tick(1);
    }

    #[test]
    fn temps_are_fresh() {
        let mut b = FunctionBuilder::new("t");
        let a = b.temp(Type::Int);
        let c = b.temp(Type::Int);
        assert_ne!(a, c);
        b.ret(None);
        let f = b.finish();
        assert!(f.var(a).name.starts_with('%'));
    }
}
