//! Dominator and post-dominator trees (Cooper–Harvey–Kennedy).
//!
//! Post-dominators drive the implicit-flow (control-dependence) part of the
//! taint analysis in `blazer-taint`, and dominators identify natural loops
//! for the bound analysis in `blazer-bounds`.

use crate::cfg::{Cfg, NodeId};

/// A dominator tree over the nodes of a [`Cfg`].
#[derive(Debug, Clone)]
pub struct DomTree {
    /// `idom[n]` is the immediate dominator of node `n`; the root maps to
    /// itself; unreachable nodes map to `None`.
    idom: Vec<Option<NodeId>>,
    root: NodeId,
}

impl DomTree {
    /// Computes the dominator tree rooted at the CFG entry.
    pub fn dominators(cfg: &Cfg) -> Self {
        let preds = |n: NodeId| cfg.preds(n).to_vec();
        let rpo = cfg.reverse_postorder();
        Self::compute(cfg.n_nodes(), cfg.entry(), &rpo, preds)
    }

    /// Computes the post-dominator tree rooted at the CFG exit (edges are
    /// reversed, so "predecessors" are CFG successors).
    pub fn post_dominators(cfg: &Cfg) -> Self {
        let preds = |n: NodeId| cfg.succs(n).to_vec();
        // Reverse postorder of the reversed graph = postorder-ish from exit.
        let rpo = reverse_postorder_from(cfg, cfg.exit());
        Self::compute(cfg.n_nodes(), cfg.exit(), &rpo, preds)
    }

    fn compute(
        n_nodes: usize,
        root: NodeId,
        rpo: &[NodeId],
        preds: impl Fn(NodeId) -> Vec<NodeId>,
    ) -> Self {
        let mut rpo_index = vec![usize::MAX; n_nodes];
        for (i, &n) in rpo.iter().enumerate() {
            rpo_index[n.index()] = i;
        }
        let mut idom: Vec<Option<NodeId>> = vec![None; n_nodes];
        idom[root.index()] = Some(root);
        let mut changed = true;
        while changed {
            changed = false;
            for &n in rpo.iter().skip(1) {
                let mut new_idom: Option<NodeId> = None;
                for p in preds(n) {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(m) => intersect(&idom, &rpo_index, p, m),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[n.index()] != Some(ni) {
                        idom[n.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        DomTree { idom, root }
    }

    /// The tree root (entry for dominators, exit for post-dominators).
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The immediate dominator of `n` (the root maps to itself); `None` for
    /// nodes unreachable from the root.
    pub fn idom(&self, n: NodeId) -> Option<NodeId> {
        self.idom[n.index()]
    }

    /// Whether `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: NodeId, b: NodeId) -> bool {
        let mut n = b;
        loop {
            if n == a {
                return true;
            }
            match self.idom(n) {
                Some(i) if i != n => n = i,
                _ => return n == a,
            }
        }
    }

    /// Whether `a` strictly dominates `b`.
    pub fn strictly_dominates(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.dominates(a, b)
    }
}

fn intersect(idom: &[Option<NodeId>], rpo_index: &[usize], mut a: NodeId, mut b: NodeId) -> NodeId {
    while a != b {
        while rpo_index[a.index()] > rpo_index[b.index()] {
            a = idom[a.index()].expect("intersect walked into unprocessed node");
        }
        while rpo_index[b.index()] > rpo_index[a.index()] {
            b = idom[b.index()].expect("intersect walked into unprocessed node");
        }
    }
    a
}

/// Reverse postorder of the *reversed* CFG starting from `root`.
fn reverse_postorder_from(cfg: &Cfg, root: NodeId) -> Vec<NodeId> {
    let mut visited = vec![false; cfg.n_nodes()];
    let mut order = Vec::new();
    let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
    visited[root.index()] = true;
    while let Some(&mut (n, ref mut i)) = stack.last_mut() {
        let preds = cfg.preds(n);
        if *i < preds.len() {
            let s = preds[*i];
            *i += 1;
            if !visited[s.index()] {
                visited[s.index()] = true;
                stack.push((s, 0));
            }
        } else {
            order.push(n);
            stack.pop();
        }
    }
    order.reverse();
    order
}

/// Natural loops of a reducible CFG, identified by back edges `latch → header`
/// where `header` dominates `latch`.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// The loop header (the target of the back edge).
    pub header: NodeId,
    /// Sources of back edges into `header`.
    pub latches: Vec<NodeId>,
    /// All nodes in the loop body, including the header.
    pub body: Vec<NodeId>,
}

impl NaturalLoop {
    /// Whether `n` belongs to the loop body.
    pub fn contains(&self, n: NodeId) -> bool {
        self.body.contains(&n)
    }
}

/// Finds all natural loops of `cfg`, merging loops that share a header.
/// Returned in no particular order.
pub fn natural_loops(cfg: &Cfg) -> Vec<NaturalLoop> {
    let dom = DomTree::dominators(cfg);
    let mut loops: Vec<NaturalLoop> = Vec::new();
    let reachable = cfg.reachable();
    for n in cfg.nodes() {
        if !reachable[n.index()] {
            continue;
        }
        for &s in cfg.succs(n) {
            if dom.dominates(s, n) {
                // Back edge n → s; collect the natural loop of header s.
                let mut body = vec![s];
                let mut stack = vec![n];
                while let Some(m) = stack.pop() {
                    if !body.contains(&m) {
                        body.push(m);
                        for &p in cfg.preds(m) {
                            stack.push(p);
                        }
                    }
                }
                if let Some(l) = loops.iter_mut().find(|l| l.header == s) {
                    l.latches.push(n);
                    for m in body {
                        if !l.body.contains(&m) {
                            l.body.push(m);
                        }
                    }
                } else {
                    loops.push(NaturalLoop { header: s, latches: vec![n], body });
                }
            }
        }
    }
    loops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{Cond, Operand};
    use crate::types::{SecurityLabel, Type};
    use crate::{CmpOp, Expr};

    fn diamond_with_loop() -> Cfg {
        // bb0: entry, branch → bb1 (loop head) after init
        // bb1: branch → bb2 (body) | bb3 (done)
        // bb2: goto bb1
        // bb3: return
        let mut b = FunctionBuilder::new("f");
        let n = b.param("n", Type::Int, SecurityLabel::Low);
        let i = b.local("i", Type::Int);
        b.assign(i, Expr::Operand(Operand::konst(0)));
        let head = b.new_block();
        let body = b.new_block();
        let done = b.new_block();
        b.goto(head);
        b.switch_to(head);
        b.branch(Cond::cmp(CmpOp::Lt, i, n), body, done);
        b.switch_to(body);
        b.add_const(i, i, 1);
        b.goto(head);
        b.switch_to(done);
        b.ret(None);
        Cfg::new(&b.finish())
    }

    #[test]
    fn dominators_of_loop() {
        let cfg = diamond_with_loop();
        let dom = DomTree::dominators(&cfg);
        let n = |i: u32| NodeId::block(crate::BlockId::new(i));
        // Entry dominates everything.
        for m in cfg.nodes() {
            assert!(dom.dominates(cfg.entry(), m));
        }
        // The loop head dominates body and done and exit.
        assert!(dom.strictly_dominates(n(1), n(2)));
        assert!(dom.strictly_dominates(n(1), n(3)));
        assert!(dom.strictly_dominates(n(1), cfg.exit()));
        // The body does not dominate done.
        assert!(!dom.dominates(n(2), n(3)));
        // idom chain: done → head, body → head, head → entry.
        assert_eq!(dom.idom(n(2)), Some(n(1)));
        assert_eq!(dom.idom(n(3)), Some(n(1)));
        assert_eq!(dom.idom(n(1)), Some(n(0)));
        assert_eq!(dom.idom(n(0)), Some(n(0)));
    }

    #[test]
    fn post_dominators_of_loop() {
        let cfg = diamond_with_loop();
        let pdom = DomTree::post_dominators(&cfg);
        let n = |i: u32| NodeId::block(crate::BlockId::new(i));
        // Exit post-dominates everything.
        for m in cfg.nodes() {
            assert!(pdom.dominates(cfg.exit(), m));
        }
        // `done` post-dominates the loop head and entry.
        assert!(pdom.strictly_dominates(n(3), n(1)));
        assert!(pdom.strictly_dominates(n(3), n(0)));
        // The loop body does not post-dominate the head (loop may exit).
        assert!(!pdom.dominates(n(2), n(1)));
    }

    #[test]
    fn finds_the_natural_loop() {
        let cfg = diamond_with_loop();
        let loops = natural_loops(&cfg);
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        let n = |i: u32| NodeId::block(crate::BlockId::new(i));
        assert_eq!(l.header, n(1));
        assert_eq!(l.latches, vec![n(2)]);
        assert!(l.contains(n(1)) && l.contains(n(2)));
        assert!(!l.contains(n(0)) && !l.contains(n(3)));
    }

    #[test]
    fn straightline_has_no_loops() {
        let mut b = FunctionBuilder::new("s");
        b.tick(3);
        b.ret(None);
        let cfg = Cfg::new(&b.finish());
        assert!(natural_loops(&cfg).is_empty());
    }
}
