//! Functions, basic blocks, and variable tables.

use crate::inst::{Inst, Terminator};
use crate::types::{SecurityLabel, Type};
use std::fmt;

/// Index of a local variable (or parameter) within a [`Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(u32);

impl VarId {
    /// Creates a variable id from a raw index.
    pub fn new(index: u32) -> Self {
        VarId(index)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Index of a basic block within a [`Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(u32);

impl BlockId {
    /// Creates a block id from a raw index.
    pub fn new(index: u32) -> Self {
        BlockId(index)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Metadata for one variable slot of a [`Function`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarInfo {
    /// Source-level name (synthesized names start with `%`).
    pub name: String,
    /// Declared type.
    pub ty: Type,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// The variable slot holding this parameter.
    pub var: VarId,
    /// Security label declared on the parameter.
    pub label: SecurityLabel,
}

/// A basic block: straight-line instructions followed by a terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The block's instructions in execution order.
    pub insts: Vec<Inst>,
    /// The control transfer that ends the block.
    pub term: Terminator,
}

impl Block {
    /// A block with no instructions and the given terminator.
    pub fn empty(term: Terminator) -> Self {
        Block { insts: Vec::new(), term }
    }
}

/// A single function: parameters, variables, and a CFG of basic blocks.
///
/// Invariants (checked by [`Function::validate`]):
/// * every `BlockId` mentioned by a terminator is in range;
/// * every `VarId` mentioned anywhere is in range;
/// * block `entry` exists;
/// * parameter variables are a prefix of the variable table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    name: String,
    params: Vec<Param>,
    vars: Vec<VarInfo>,
    blocks: Vec<Block>,
    entry: BlockId,
    ret_ty: Option<Type>,
}

impl Function {
    /// Assembles a function from parts. Prefer
    /// [`crate::builder::FunctionBuilder`] for incremental construction.
    ///
    /// # Panics
    ///
    /// Panics if the parts fail [`Function::validate`].
    pub fn from_parts(
        name: impl Into<String>,
        params: Vec<Param>,
        vars: Vec<VarInfo>,
        blocks: Vec<Block>,
        entry: BlockId,
        ret_ty: Option<Type>,
    ) -> Self {
        let f = Function { name: name.into(), params, vars, blocks, entry, ret_ty };
        if let Err(e) = f.validate() {
            panic!("invalid function `{}`: {e}", f.name);
        }
        f
    }

    /// The function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared parameters, in order.
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// The variable table (parameters first).
    pub fn vars(&self) -> &[VarInfo] {
        &self.vars
    }

    /// All basic blocks, indexed by [`BlockId`].
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// The declared return type, if the function returns a value.
    pub fn ret_ty(&self) -> Option<Type> {
        self.ret_ty
    }

    /// Looks up a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Metadata for a variable.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn var(&self, id: VarId) -> &VarInfo {
        &self.vars[id.index()]
    }

    /// Finds a variable by source name.
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.vars.iter().position(|v| v.name == name).map(|i| VarId::new(i as u32))
    }

    /// The security label of a variable if it is a parameter, else `None`.
    pub fn param_label(&self, var: VarId) -> Option<SecurityLabel> {
        self.params.iter().find(|p| p.var == var).map(|p| p.label)
    }

    /// Iterator over `(BlockId, &Block)` pairs.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks.iter().enumerate().map(|(i, b)| (BlockId::new(i as u32), b))
    }

    /// Checks the structural invariants listed on the type.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        if self.blocks.is_empty() {
            return Err("function has no blocks".to_string());
        }
        if self.entry.index() >= self.blocks.len() {
            return Err(format!("entry {} out of range", self.entry));
        }
        for (i, p) in self.params.iter().enumerate() {
            if p.var.index() != i {
                return Err(format!("parameter {i} bound to {}, expected v{i}", p.var));
            }
        }
        let check_var = |v: VarId| -> Result<(), String> {
            if v.index() >= self.vars.len() {
                Err(format!("variable {v} out of range"))
            } else {
                Ok(())
            }
        };
        for (bid, block) in self.iter_blocks() {
            for inst in &block.insts {
                if let Some(d) = inst.def() {
                    check_var(d)?;
                }
                for u in inst.uses() {
                    check_var(u)?;
                }
            }
            for s in block.term.successors() {
                if s.index() >= self.blocks.len() {
                    return Err(format!("block {bid} jumps to out-of-range {s}"));
                }
            }
            if let Terminator::Branch { cond, .. } = &block.term {
                for v in cond.vars() {
                    check_var(v)?;
                }
            }
        }
        Ok(())
    }

    /// Whether any parameter is labeled [`SecurityLabel::High`].
    pub fn has_high_input(&self) -> bool {
        self.params.iter().any(|p| p.label.is_high())
    }

    /// Whether any parameter is labeled [`SecurityLabel::Low`].
    pub fn has_low_input(&self) -> bool {
        self.params.iter().any(|p| p.label.is_low())
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::pretty::write_function(f, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{Cond, Operand, Terminator};
    use crate::CmpOp;

    fn tiny() -> Function {
        let mut b = FunctionBuilder::new("tiny");
        let x = b.param("x", Type::Int, SecurityLabel::Low);
        let exit = b.new_block();
        let other = b.new_block();
        b.branch(Cond::cmp(CmpOp::Gt, x, Operand::konst(0)), other, exit);
        b.switch_to(other);
        b.goto(exit);
        b.switch_to(exit);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn lookup_by_name() {
        let f = tiny();
        let x = f.var_by_name("x").expect("param present");
        assert_eq!(f.var(x).ty, Type::Int);
        assert_eq!(f.param_label(x), Some(SecurityLabel::Low));
        assert!(f.var_by_name("nope").is_none());
    }

    #[test]
    fn validate_rejects_bad_jump() {
        let blocks = vec![Block::empty(Terminator::Goto(BlockId::new(7)))];
        let f = Function {
            name: "bad".into(),
            params: vec![],
            vars: vec![],
            blocks,
            entry: BlockId::new(0),
            ret_ty: None,
        };
        assert!(f.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_var() {
        let blocks = vec![Block {
            insts: vec![Inst::Havoc { dst: VarId::new(3) }],
            term: Terminator::Return(None),
        }];
        let f = Function {
            name: "bad".into(),
            params: vec![],
            vars: vec![],
            blocks,
            entry: BlockId::new(0),
            ret_ty: None,
        };
        assert!(f.validate().is_err());
    }

    #[test]
    fn high_low_queries() {
        let f = tiny();
        assert!(f.has_low_input());
        assert!(!f.has_high_input());
    }
}
