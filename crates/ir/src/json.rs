//! Minimal JSON value model, writer, and parser.
//!
//! The workspace is std-only (vendored-stubs environment, no serde), yet
//! three places speak JSON: the `blazer-serve` HTTP API, the CLI's `--json`
//! output, and the `table1` benchmark report. This module is their shared
//! serialization layer, so escaping and number formatting are implemented
//! exactly once.
//!
//! Objects preserve insertion order (they are association lists, not maps),
//! which keeps emitted reports diffable across runs.
//!
//! ```
//! use blazer_ir::json::Json;
//!
//! let doc = Json::obj([
//!     ("verdict", Json::from("safe")),
//!     ("lp_calls", Json::from(42u64)),
//! ]);
//! assert_eq!(doc.to_string(), r#"{"verdict": "safe", "lp_calls": 42}"#);
//! let back = Json::parse(&doc.to_string()).unwrap();
//! assert_eq!(back.get("lp_calls").and_then(Json::as_u64), Some(42));
//! ```

use std::fmt;

/// A JSON document.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer, held losslessly. JSON has one numeric type on the wire,
    /// but budget and fixpoint counters are `u64`s that must round-trip
    /// exactly — routing them through `f64` corrupts values above 2^53.
    Int(i128),
    /// A non-integer (or explicitly floating-point) number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// Whether an `f64` and an `i128` denote exactly the same number (the cast
/// round-trips both ways, so neither rounding nor truncation is hidden).
fn f64_equals_i128(x: f64, n: i128) -> bool {
    x.is_finite() && x == n as f64 && x.fract() == 0.0 && {
        // `x` is integral and finite; it fits i128 iff within range.
        (-1.7014118346046923e38..1.7014118346046923e38).contains(&x) && x as i128 == n
    }
}

impl PartialEq for Json {
    /// Structural equality, except numbers compare by numeric value:
    /// `Int(5)` equals `Num(5.0)`. The writer prints integral floats
    /// without a fraction and the parser reads bare integers as [`Json::Int`],
    /// so a `Num(5.0)` document must still equal its re-parsed self.
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Json::Null, Json::Null) => true,
            (Json::Bool(a), Json::Bool(b)) => a == b,
            (Json::Int(a), Json::Int(b)) => a == b,
            (Json::Num(a), Json::Num(b)) => a == b,
            (Json::Int(n), Json::Num(x)) | (Json::Num(x), Json::Int(n)) => f64_equals_i128(*x, *n),
            (Json::Str(a), Json::Str(b)) => a == b,
            (Json::Arr(a), Json::Arr(b)) => a == b,
            (Json::Obj(a), Json::Obj(b)) => a == b,
            _ => false,
        }
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Self {
        Json::Num(x)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Int(n as i128)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Int(n as i128)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Self {
        Json::Int(n as i128)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Self {
        v.map_or(Json::Null, Into::into)
    }
}

impl Json {
    /// An object from `(key, value)` pairs, preserving their order.
    pub fn obj<K: Into<String>, V: Into<Json>>(pairs: impl IntoIterator<Item = (K, V)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v.into())).collect())
    }

    /// An array from values.
    pub fn arr<V: Into<Json>>(items: impl IntoIterator<Item = V>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }

    /// A number rounded to three decimals (the convention for reported
    /// wall-clock seconds).
    pub fn secs(x: f64) -> Json {
        Json::Num((x * 1000.0).round() / 1000.0)
    }

    /// Member lookup on an object (`None` on other variants or a missing
    /// key; the first binding wins on duplicates).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, for [`Json::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, for [`Json::Num`] and [`Json::Int`] (the latter
    /// rounds when the integer exceeds 2^53 in magnitude — use [`Json::as_u64`]
    /// for exact counters).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer — exact values only.
    ///
    /// [`Json::Int`] converts iff it lies in `0..=u64::MAX`. [`Json::Num`]
    /// converts only when the float *exactly* denotes an unsigned integer,
    /// which bounds it by 2^53: beyond that, consecutive integers are no
    /// longer distinguishable in `f64`, and the old `*x <= u64::MAX as f64`
    /// check even accepted 2^64 itself through rounding (wrapping the cast).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => u64::try_from(*n).ok(),
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 9_007_199_254_740_992.0 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, for [`Json::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, for [`Json::Arr`].
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Renders with two-space indentation and a trailing newline (the style
    /// of committed report files).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let pad = |out: &mut String, depth: usize| {
            for _ in 0..depth {
                out.push_str("  ");
            }
        };
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                    out.push_str(if i + 1 == items.len() { "\n" } else { ",\n" });
                }
                pad(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    pad(out, depth + 1);
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\": ");
                    v.write_pretty(out, depth + 1);
                    out.push_str(if i + 1 == pairs.len() { "\n" } else { ",\n" });
                }
                pad(out, depth);
                out.push('}');
            }
            other => {
                use fmt::Write;
                let _ = write!(out, "{other}");
            }
        }
    }

    /// Parses a JSON document (the whole input must be one value plus
    /// whitespace).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(n) => write!(f, "{n}"),
            Json::Num(x) => {
                if !x.is_finite() {
                    // JSON has no NaN/Infinity; degrade to null.
                    f.write_str("null")
                } else if x.fract() == 0.0 && x.abs() < 9.0e15 {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x}")
                }
            }
            Json::Str(s) => write!(f, "\"{}\"", escape(s)),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "\"{}\": {v}", escape(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Escapes a string for embedding between JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// A parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting the recursive-descent parser accepts. The
/// parser recurses per `[`/`{`, so unbounded input depth would become
/// unbounded native stack; reports nest a handful of levels, and 128 leaves
/// generous headroom while keeping adversarial input (the serve API parses
/// request bodies) a clean error instead of a stack overflow.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError { offset: self.pos, message: msg.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect `\uXXXX` low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?,
                            );
                        }
                        other => return Err(self.err(format!("bad escape `\\{}`", other as char))),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        // Bare integer literals stay exact: `u64` counters (and anything up
        // to i128) survive a round trip bit-for-bit. Only literals beyond
        // i128 — which nothing in this workspace emits — degrade to `f64`.
        if integral {
            if let Ok(n) = text.parse::<i128>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("malformed number"))
    }
}

/// FNV-1a 64-bit hash, the workspace's content-address primitive (std has no
/// stable, documented hash; this one is tiny, portable, and deterministic
/// across processes, which on-disk cache keys require).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_documents() {
        let doc = Json::obj([
            ("name", Json::from("modPow \"safe\"\n")),
            ("size", Json::from(31usize)),
            ("times", Json::arr([Json::secs(1.23456), Json::Null, Json::from(0.5)])),
            ("nested", Json::obj([("ok", Json::from(true))])),
        ]);
        for text in [doc.to_string(), doc.pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc, "{text}");
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::from(5u64).to_string(), "5");
        assert_eq!(Json::from(-3i64).to_string(), "-3");
        assert_eq!(Json::secs(0.3714).to_string(), "0.371");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn escapes_and_unescapes() {
        let s = "quote\" slash\\ nl\n tab\t ctrl\u{1} unicode é";
        let parsed = Json::parse(&Json::Str(s.into()).to_string()).unwrap();
        assert_eq!(parsed.as_str(), Some(s));
        let unicode = Json::parse(r#""a\u00e9b \ud83d\ude00""#).unwrap();
        assert_eq!(unicode.as_str(), Some("aéb 😀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"\\q\"", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"a": 1, "b": [true, null], "c": "x"}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("b").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
        assert_eq!(doc.get("c").and_then(Json::as_str), Some("x"));
        assert!(doc.get("missing").is_none());
        assert_eq!(Json::from(None::<u64>), Json::Null);
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
    }

    #[test]
    fn u64_counters_roundtrip_exactly() {
        // Every precision-boundary case the f64 route corrupted: 2^53 ± 1
        // (first gap in f64 integers), u64::MAX (2^64 − 1, which the old
        // `<= u64::MAX as f64` check rounded into accepting 2^64 itself).
        for n in [0u64, 1, (1 << 53) - 1, 1 << 53, (1 << 53) + 1, u64::MAX - 1, u64::MAX] {
            let doc = Json::from(n);
            let text = doc.to_string();
            assert_eq!(text, n.to_string());
            let back = Json::parse(&text).unwrap();
            assert_eq!(back.as_u64(), Some(n), "u64 {n} must round-trip exactly");
            assert_eq!(back, doc);
        }
    }

    #[test]
    fn as_u64_rejects_out_of_range_and_inexact() {
        // 2^64 itself: representable in f64 (and i128) but not in u64.
        assert_eq!(Json::parse("18446744073709551616").unwrap().as_u64(), None);
        assert_eq!(Json::Num(1.8446744073709552e19).as_u64(), None);
        assert_eq!(Json::Int(-1).as_u64(), None);
        assert_eq!(Json::Num(-0.5).as_u64(), None);
        // Floats above 2^53 no longer denote a unique integer.
        assert_eq!(Json::Num(9.007199254740994e15).as_u64(), None);
        // ... but exactly-representable small integers still convert.
        assert_eq!(Json::Num(5.0).as_u64(), Some(5));
        assert_eq!(Json::parse("5.0").unwrap().as_u64(), Some(5));
    }

    #[test]
    fn int_and_num_compare_by_value() {
        assert_eq!(Json::Int(5), Json::Num(5.0));
        assert_eq!(Json::Num(-2.0), Json::Int(-2));
        assert_ne!(Json::Int(5), Json::Num(5.5));
        // 2^53 + 1 is not representable in f64; its nearest float is 2^53.
        assert_ne!(Json::Int((1 << 53) + 1), Json::Num(9_007_199_254_740_992.0));
        assert_ne!(Json::Int(0), Json::Num(f64::NAN));
        // Beyond i128 range the float cast would wrap without the range guard.
        assert_ne!(Json::Int(i128::MAX), Json::Num(f64::MAX));
    }

    #[test]
    fn surrogate_escapes() {
        // A valid pair decodes ...
        assert_eq!(Json::parse(r#""😀""#).unwrap().as_str(), Some("😀"));
        // ... but lone halves, malformed pairs, and truncated escapes fail
        // cleanly rather than producing invalid UTF-8 or panicking.
        for bad in [
            r#""\ud83d""#,       // lone high surrogate at end of string
            r#""\ud83d rest""#,  // high surrogate followed by plain text
            r#""\ud83d\n""#,     // high surrogate followed by a non-\u escape
            r#""\ud83d\ud83d""#, // high followed by another high
            r#""\ude00""#,       // lone low surrogate
            r#""\u12"#,          // \u escape truncated by end of input
            r#""\u""#,           // \u with no digits before the closing quote
            r#""\ud83d\u00""#,   // truncated low half
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn nesting_is_bounded() {
        // At the cap: parses fine.
        let ok = format!("{}0{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&ok).is_ok());
        // One past the cap: clean error, not a native stack overflow.
        let deep = format!("{}0{}", "[".repeat(MAX_DEPTH + 1), "]".repeat(MAX_DEPTH + 1));
        assert!(Json::parse(&deep).is_err());
        // Way past, mixed containers, unterminated: still a clean error.
        let hostile = "[{\"k\":".repeat(20_000);
        assert!(Json::parse(&hostile).is_err());
        // Sibling containers don't accumulate depth.
        let wide = format!("[{}1]", "[1],".repeat(500));
        assert!(Json::parse(&wide).is_ok());
    }
}
