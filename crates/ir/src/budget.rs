//! Cooperative resource budgets for the whole analysis stack.
//!
//! The paper's driver (Fig. 2) is a *give-up-gracefully* algorithm: when the
//! search space is exhausted it answers "unknown" rather than diverging. This
//! module extends that discipline to machine resources. A [`Budget`] carries
//! optional caps on wall-clock time, LP solve calls, abstract-interpreter
//! fixpoint passes, and driver refinement steps. The driver *installs* a
//! budget for the duration of one analysis ([`Budget::install`]); the deep
//! layers (simplex, Fourier–Motzkin projection, the worklist engine, the
//! bound analysis) then *consume* against it through cheap thread-local
//! calls — no signatures change across crate boundaries.
//!
//! Exhaustion is sticky and cooperative: once a cap trips, every subsequent
//! [`check`]/`consume_*` call reports [`Exhausted`] and each layer falls back
//! to a *sound over-approximation* (an LP solve is answered "unbounded", a
//! fixpoint is widened to top, a derived constraint is dropped). The driver
//! eventually surfaces the situation as an `Unknown` verdict carrying the
//! exhausted [`Resource`].
//!
//! # Fault injection
//!
//! For robustness tests, a [`FaultSpec`] (programmatic, or parsed from the
//! `BLAZER_FAULT` environment variable at install time) deterministically
//! provokes failures: `lp_call:<n>` caps LP calls at `n`, `overflow:<n>`
//! makes every checked rational operation after the first `n` report
//! overflow, `deadline:<ms>` imposes a deadline, and `panic:<n>` panics at
//! the `n`-th LP call — once per process — to exercise `catch_unwind`
//! isolation in the benchmark harnesses.

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// The resource classes a [`Budget`] can cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// Wall-clock deadline.
    WallClock,
    /// Number of LP (simplex) solve calls.
    LpCalls,
    /// Number of abstract-interpreter fixpoint passes.
    FixpointPasses,
    /// Number of driver refinement steps.
    RefinementSteps,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Resource::WallClock => "wall-clock deadline",
            Resource::LpCalls => "LP-call budget",
            Resource::FixpointPasses => "fixpoint-pass budget",
            Resource::RefinementSteps => "refinement-step budget",
        })
    }
}

/// The error returned by [`check`] and the `consume_*` functions once a
/// resource cap has tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exhausted {
    /// Which resource ran out first.
    pub resource: Resource,
}

impl fmt::Display for Exhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "analysis budget exhausted: {}", self.resource)
    }
}

impl std::error::Error for Exhausted {}

/// Deterministic fault-injection configuration (see module docs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSpec {
    /// Cap LP solve calls at this count.
    pub lp_call: Option<u64>,
    /// Make every checked rational operation after the first `n` overflow.
    pub overflow: Option<u64>,
    /// Impose this wall-clock deadline.
    pub deadline: Option<Duration>,
    /// Panic at the `n`-th LP call (fires at most once per process).
    pub panic_at_lp: Option<u64>,
}

impl FaultSpec {
    /// Parses the `BLAZER_FAULT` syntax: a `|`-separated list of
    /// `lp_call:<n>`, `overflow:<n>`, `deadline:<ms>`, `panic:<n>` clauses.
    /// Malformed clauses are ignored (fault injection is best-effort test
    /// tooling, not user API).
    pub fn parse(spec: &str) -> Self {
        let mut out = FaultSpec::default();
        for clause in spec.split('|') {
            let Some((key, val)) = clause.split_once(':') else { continue };
            let Ok(n) = val.trim().parse::<u64>() else { continue };
            match key.trim() {
                "lp_call" => out.lp_call = Some(n),
                "overflow" => out.overflow = Some(n),
                "deadline" => out.deadline = Some(Duration::from_millis(n)),
                "panic" => out.panic_at_lp = Some(n),
                _ => {}
            }
        }
        out
    }

    fn from_env() -> Option<Self> {
        let spec = std::env::var("BLAZER_FAULT").ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        Some(FaultSpec::parse(&spec))
    }

    /// True when no fault is configured.
    pub fn is_empty(&self) -> bool {
        *self == FaultSpec::default()
    }
}

/// Resource caps for one analysis run. `None` everywhere (the
/// [`Budget::default`]) means unlimited.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock deadline for the whole analysis.
    pub deadline: Option<Duration>,
    /// Cap on LP (simplex) solve calls.
    pub max_lp_calls: Option<u64>,
    /// Cap on abstract-interpreter fixpoint passes.
    pub max_fixpoint_passes: Option<u64>,
    /// Cap on driver refinement steps.
    pub max_refinement_steps: Option<u64>,
    /// Deterministic fault injection (tests only; merged with `BLAZER_FAULT`
    /// at install time).
    pub fault: Option<FaultSpec>,
}

impl Budget {
    /// An unlimited budget.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Sets the wall-clock deadline.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Sets the LP-call cap.
    pub fn with_max_lp_calls(mut self, n: u64) -> Self {
        self.max_lp_calls = Some(n);
        self
    }

    /// Sets the fixpoint-pass cap.
    pub fn with_max_fixpoint_passes(mut self, n: u64) -> Self {
        self.max_fixpoint_passes = Some(n);
        self
    }

    /// Sets the refinement-step cap.
    pub fn with_max_refinement_steps(mut self, n: u64) -> Self {
        self.max_refinement_steps = Some(n);
        self
    }

    /// Sets the fault-injection spec (tests only).
    pub fn with_fault(mut self, fault: FaultSpec) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Whether any cap (or fault) is configured.
    pub fn is_unlimited(&self) -> bool {
        *self == Budget::default()
    }

    /// Activates this budget on the current thread until the returned guard
    /// is dropped. Nested installs stack: the inner budget applies while its
    /// guard lives, then the outer one resumes. The `BLAZER_FAULT`
    /// environment variable, if set, is merged into the fault spec here so
    /// each installation re-reads it deterministically.
    pub fn install(&self) -> BudgetGuard {
        let mut fault = self.fault.clone().unwrap_or_default();
        if let Some(env) = FaultSpec::from_env() {
            fault = FaultSpec {
                lp_call: env.lp_call.or(fault.lp_call),
                overflow: env.overflow.or(fault.overflow),
                deadline: env.deadline.or(fault.deadline),
                panic_at_lp: env.panic_at_lp.or(fault.panic_at_lp),
            };
        }
        let deadline =
            [self.deadline, fault.deadline].into_iter().flatten().min().map(|d| Instant::now() + d);
        let max_lp_calls = [self.max_lp_calls, fault.lp_call].into_iter().flatten().min();
        let active = Active {
            start: Instant::now(),
            deadline,
            max_lp_calls,
            max_fixpoint_passes: self.max_fixpoint_passes,
            max_refinement_steps: self.max_refinement_steps,
            lp_calls: 0,
            fixpoint_passes: 0,
            refinement_steps: 0,
            overflow_events: 0,
            exhausted: None,
            degradations: Vec::new(),
            fault_overflow_after: fault.overflow,
            fault_overflow_ops: 0,
            fault_panic_at_lp: fault.panic_at_lp,
            rescue_grants: 0,
        };
        let previous = ACTIVE.with(|a| a.borrow_mut().replace(active));
        BudgetGuard { previous }
    }
}

/// What one analysis actually consumed, for `AnalysisOutcome` metadata.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BudgetReport {
    /// LP solve calls consumed.
    pub lp_calls: u64,
    /// Fixpoint passes consumed.
    pub fixpoint_passes: u64,
    /// Refinement steps consumed.
    pub refinement_steps: u64,
    /// Rational-overflow events absorbed as precision loss.
    pub overflow_events: u64,
    /// Wall-clock time elapsed since the budget was installed.
    pub elapsed: Duration,
    /// The first resource that ran out, if any.
    pub exhausted: Option<Resource>,
    /// Human-readable log of every sound degradation taken.
    pub degradations: Vec<String>,
}

struct Active {
    start: Instant,
    deadline: Option<Instant>,
    max_lp_calls: Option<u64>,
    max_fixpoint_passes: Option<u64>,
    max_refinement_steps: Option<u64>,
    lp_calls: u64,
    fixpoint_passes: u64,
    refinement_steps: u64,
    overflow_events: u64,
    exhausted: Option<Resource>,
    degradations: Vec<String>,
    fault_overflow_after: Option<u64>,
    fault_overflow_ops: u64,
    fault_panic_at_lp: Option<u64>,
    rescue_grants: u32,
}

thread_local! {
    static ACTIVE: RefCell<Option<Active>> = const { RefCell::new(None) };
}

/// `panic:<n>` fault fires at most once per process, so a harness that
/// isolates the panic with `catch_unwind` does not crash on every subsequent
/// benchmark too.
static PANIC_FAULT_FIRED: AtomicBool = AtomicBool::new(false);

/// RAII guard returned by [`Budget::install`]; restores the previously
/// installed budget (if any) on drop.
pub struct BudgetGuard {
    previous: Option<Active>,
}

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        ACTIVE.with(|a| *a.borrow_mut() = self.previous.take());
    }
}

impl fmt::Debug for BudgetGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BudgetGuard")
    }
}

fn with_active<R>(f: impl FnOnce(&mut Active) -> R) -> Option<R> {
    ACTIVE.with(|a| a.borrow_mut().as_mut().map(f))
}

fn deadline_ok(active: &mut Active) -> bool {
    if let Some(deadline) = active.deadline {
        if Instant::now() >= deadline {
            active.exhausted.get_or_insert(Resource::WallClock);
            return false;
        }
    }
    true
}

/// How often (in LP calls) the deadline clock is polled; individual solves
/// are cheap enough that this keeps the overhead negligible while bounding
/// deadline overshoot tightly.
const DEADLINE_POLL_PERIOD: u64 = 16;

/// Checks the sticky exhaustion state and the deadline without consuming
/// anything. Cheap; safe to call in inner loops.
pub fn check() -> Result<(), Exhausted> {
    with_active(|active| {
        if let Some(resource) = active.exhausted {
            return Err(Exhausted { resource });
        }
        if !deadline_ok(active) {
            return Err(Exhausted { resource: Resource::WallClock });
        }
        Ok(())
    })
    .unwrap_or(Ok(()))
}

/// Consumes one LP solve call. Also the trigger point for the `panic:<n>`
/// fault and the densest deadline poll in the stack.
pub fn consume_lp_call() -> Result<(), Exhausted> {
    let panic_now = with_active(|active| {
        if let Some(resource) = active.exhausted {
            return Err(Exhausted { resource });
        }
        active.lp_calls += 1;
        if let Some(n) = active.fault_panic_at_lp {
            if active.lp_calls >= n && !PANIC_FAULT_FIRED.swap(true, Ordering::SeqCst) {
                return Ok(true);
            }
        }
        if let Some(cap) = active.max_lp_calls {
            if active.lp_calls > cap {
                active.exhausted = Some(Resource::LpCalls);
                return Err(Exhausted { resource: Resource::LpCalls });
            }
        }
        if active.lp_calls % DEADLINE_POLL_PERIOD == 1 && !deadline_ok(active) {
            return Err(Exhausted { resource: Resource::WallClock });
        }
        Ok(false)
    })
    .unwrap_or(Ok(false))?;
    if panic_now {
        panic!("injected fault: panic at LP call (BLAZER_FAULT)");
    }
    Ok(())
}

/// Consumes one abstract-interpreter fixpoint pass.
pub fn consume_fixpoint_pass() -> Result<(), Exhausted> {
    with_active(|active| {
        if let Some(resource) = active.exhausted {
            return Err(Exhausted { resource });
        }
        active.fixpoint_passes += 1;
        if let Some(cap) = active.max_fixpoint_passes {
            if active.fixpoint_passes > cap {
                active.exhausted = Some(Resource::FixpointPasses);
                return Err(Exhausted { resource: Resource::FixpointPasses });
            }
        }
        if !deadline_ok(active) {
            return Err(Exhausted { resource: Resource::WallClock });
        }
        Ok(())
    })
    .unwrap_or(Ok(()))
}

/// Consumes one driver refinement step.
pub fn consume_refinement_step() -> Result<(), Exhausted> {
    with_active(|active| {
        if let Some(resource) = active.exhausted {
            return Err(Exhausted { resource });
        }
        active.refinement_steps += 1;
        if let Some(cap) = active.max_refinement_steps {
            if active.refinement_steps > cap {
                active.exhausted = Some(Resource::RefinementSteps);
                return Err(Exhausted { resource: Resource::RefinementSteps });
            }
        }
        if !deadline_ok(active) {
            return Err(Exhausted { resource: Resource::WallClock });
        }
        Ok(())
    })
    .unwrap_or(Ok(()))
}

/// The first exhausted resource, if any (sticky).
pub fn exhausted() -> Option<Resource> {
    with_active(|active| active.exhausted).flatten()
}

/// Polls the wall-clock deadline directly, bypassing the sticky-exhaustion
/// short-circuit of [`check`]: when a softer resource (say the LP-call cap)
/// tripped first, long-running loops still need to notice that the deadline
/// has since passed. One `Instant::now` per call; safe in inner loops.
pub fn deadline_exceeded() -> bool {
    with_active(|active| !deadline_ok(active)).unwrap_or(false)
}

/// Records a sound degradation for the final [`BudgetReport`]. Duplicate
/// messages are collapsed: a starved run can deny thousands of identical
/// LP calls, and one note per distinct event is what a reader wants.
pub fn note_degradation(msg: impl Into<String>) {
    let msg = msg.into();
    with_active(|active| {
        if active.degradations.len() < 256 && !active.degradations.contains(&msg) {
            active.degradations.push(msg);
        }
    });
}

/// Records one absorbed rational-overflow event.
pub fn note_overflow() {
    with_active(|active| active.overflow_events += 1);
}

/// Number of overflow events absorbed so far (the driver diffs this across a
/// trail analysis to decide whether to degrade to a coarser domain).
pub fn overflow_events() -> u64 {
    with_active(|active| active.overflow_events).unwrap_or(0)
}

/// Fault hook for checked rational arithmetic: returns `true` when the
/// `overflow:<n>` fault says this operation should report overflow.
pub fn inject_overflow() -> bool {
    with_active(|active| {
        let Some(after) = active.fault_overflow_after else { return false };
        active.fault_overflow_ops += 1;
        active.fault_overflow_ops > after
    })
    .unwrap_or(false)
}

/// Grants extra LP calls so the driver can retry a budget-starved trail with
/// a coarser (cheaper) domain. Clears a sticky `LpCalls` exhaustion; refuses
/// when the deadline (which cannot be extended) has passed or after too many
/// grants. Returns whether the rescue was granted.
pub fn grant_lp_rescue(extra: u64) -> bool {
    with_active(|active| {
        if active.rescue_grants >= 8 || !deadline_ok(active) {
            return false;
        }
        match active.exhausted {
            None | Some(Resource::LpCalls) => {
                active.rescue_grants += 1;
                active.exhausted = None;
                if let Some(cap) = active.max_lp_calls.as_mut() {
                    *cap = active.lp_calls.saturating_add(extra);
                }
                true
            }
            _ => false,
        }
    })
    .unwrap_or(false)
}

/// Snapshot of consumption so far (empty/default when no budget is
/// installed).
pub fn report() -> BudgetReport {
    with_active(|active| BudgetReport {
        lp_calls: active.lp_calls,
        fixpoint_passes: active.fixpoint_passes,
        refinement_steps: active.refinement_steps,
        overflow_events: active.overflow_events,
        elapsed: active.start.elapsed(),
        exhausted: active.exhausted,
        degradations: active.degradations.clone(),
    })
    .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_budget_installed_is_unlimited() {
        assert!(check().is_ok());
        for _ in 0..1000 {
            assert!(consume_lp_call().is_ok());
            assert!(consume_fixpoint_pass().is_ok());
            assert!(consume_refinement_step().is_ok());
        }
        assert_eq!(exhausted(), None);
        assert_eq!(report(), BudgetReport::default());
    }

    #[test]
    fn lp_cap_trips_and_sticks() {
        let _guard = Budget::unlimited().with_max_lp_calls(3).install();
        assert!(consume_lp_call().is_ok());
        assert!(consume_lp_call().is_ok());
        assert!(consume_lp_call().is_ok());
        let err = consume_lp_call().unwrap_err();
        assert_eq!(err.resource, Resource::LpCalls);
        // Sticky: everything reports exhaustion now.
        assert!(check().is_err());
        assert!(consume_fixpoint_pass().is_err());
        assert_eq!(exhausted(), Some(Resource::LpCalls));
        let report = report();
        assert_eq!(report.exhausted, Some(Resource::LpCalls));
        assert_eq!(report.lp_calls, 4);
    }

    #[test]
    fn deadline_trips() {
        let _guard = Budget::unlimited().with_deadline(Duration::ZERO).install();
        let err = check().unwrap_err();
        assert_eq!(err.resource, Resource::WallClock);
        assert_eq!(exhausted(), Some(Resource::WallClock));
    }

    #[test]
    fn guard_restores_previous_budget() {
        let _outer = Budget::unlimited().with_max_lp_calls(100).install();
        consume_lp_call().unwrap();
        {
            let _inner = Budget::unlimited().with_max_lp_calls(1).install();
            consume_lp_call().unwrap();
            assert!(consume_lp_call().is_err());
        }
        // Outer budget resumed, with its own counter.
        assert!(check().is_ok());
        assert_eq!(report().lp_calls, 1);
    }

    #[test]
    fn fault_spec_parses_clauses() {
        let f = FaultSpec::parse("lp_call:10|overflow:3|deadline:250|panic:7");
        assert_eq!(f.lp_call, Some(10));
        assert_eq!(f.overflow, Some(3));
        assert_eq!(f.deadline, Some(Duration::from_millis(250)));
        assert_eq!(f.panic_at_lp, Some(7));
        // Malformed clauses are ignored.
        let g = FaultSpec::parse("bogus|lp_call:xyz|overflow:2");
        assert_eq!(g, FaultSpec { overflow: Some(2), ..FaultSpec::default() });
    }

    #[test]
    fn injected_overflow_fires_after_n_ops() {
        let fault = FaultSpec { overflow: Some(2), ..FaultSpec::default() };
        let _guard = Budget::unlimited().with_fault(fault).install();
        assert!(!inject_overflow());
        assert!(!inject_overflow());
        assert!(inject_overflow());
        assert!(inject_overflow());
    }

    #[test]
    fn lp_rescue_extends_the_cap() {
        let _guard = Budget::unlimited().with_max_lp_calls(1).install();
        consume_lp_call().unwrap();
        assert!(consume_lp_call().is_err());
        assert!(grant_lp_rescue(5));
        assert_eq!(exhausted(), None);
        for _ in 0..5 {
            consume_lp_call().unwrap();
        }
        assert!(consume_lp_call().is_err());
    }

    #[test]
    fn degradations_are_logged_and_bounded() {
        let _guard = Budget::unlimited().install();
        for i in 0..300 {
            note_degradation(format!("event {i}"));
        }
        let r = report();
        assert_eq!(r.degradations.len(), 256);
        assert_eq!(r.degradations[0], "event 0");
    }
}
