//! Cooperative resource budgets for the whole analysis stack.
//!
//! The paper's driver (Fig. 2) is a *give-up-gracefully* algorithm: when the
//! search space is exhausted it answers "unknown" rather than diverging. This
//! module extends that discipline to machine resources. A [`Budget`] carries
//! optional caps on wall-clock time, LP solve calls, abstract-interpreter
//! fixpoint passes, and driver refinement steps. The driver *installs* a
//! budget for the duration of one analysis ([`Budget::install`]); the deep
//! layers (simplex, Fourier–Motzkin projection, the worklist engine, the
//! bound analysis) then *consume* against it through cheap thread-local
//! calls — no signatures change across crate boundaries.
//!
//! Exhaustion is sticky and cooperative: once a cap trips, every subsequent
//! [`check`]/`consume_*` call reports [`Exhausted`] and each layer falls back
//! to a *sound over-approximation* (an LP solve is answered "unbounded", a
//! fixpoint is widened to top, a derived constraint is dropped). The driver
//! eventually surfaces the situation as an `Unknown` verdict carrying the
//! exhausted [`Resource`].
//!
//! # Shared mode (parallel analysis)
//!
//! Installing a budget registers it in a thread-local slot, but the state
//! behind that slot is an [`Arc`]-held block of atomic counters plus a fixed
//! deadline [`Instant`]. Worker threads spawned by the driver obtain a
//! [`BudgetHandle`] to the *same* state ([`handle`]) and install it as their
//! own thread-local handle ([`BudgetHandle::install`]). Every cap is thereby
//! enforced **globally, counted exactly once** across all workers: an
//! LP-call cap of `n` means `n` successful LP calls total, never `n` per
//! thread, and the first worker to trip a cap makes every other worker's
//! next `consume_*`/[`check`] call report the same sticky [`Exhausted`].
//! The one genuinely thread-local quantity is the overflow-event counter
//! ([`local_overflow_events`]): the driver diffs it around one bound
//! computation to decide whether *that* computation overflowed, which must
//! not be polluted by a sibling worker's overflows.
//!
//! # Fault injection
//!
//! For robustness tests, a [`FaultSpec`] (programmatic, or parsed from the
//! `BLAZER_FAULT` environment variable at install time) deterministically
//! provokes failures: `lp_call:<n>` caps LP calls at `n`, `overflow:<n>`
//! makes every checked rational operation after the first `n` report
//! overflow, `deadline:<ms>` imposes a deadline, and `panic:<n>` panics at
//! the `n`-th LP call — once per process — to exercise `catch_unwind`
//! isolation in the benchmark harnesses.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The resource classes a [`Budget`] can cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// Wall-clock deadline.
    WallClock,
    /// Number of LP (simplex) solve calls.
    LpCalls,
    /// Number of abstract-interpreter fixpoint passes.
    FixpointPasses,
    /// Number of driver refinement steps.
    RefinementSteps,
    /// The budget was revoked by a scheduler (a portfolio race decided the
    /// remaining work is moot). Not a cap — there is nothing to configure —
    /// but it rides the same sticky CAS exhaustion cell, so every layer's
    /// existing give-up-gracefully path doubles as cooperative cancellation.
    Revoked,
}

impl Resource {
    /// Encoding for the shared atomic exhaustion cell: 0 is "not exhausted".
    fn code(self) -> u8 {
        match self {
            Resource::WallClock => 1,
            Resource::LpCalls => 2,
            Resource::FixpointPasses => 3,
            Resource::RefinementSteps => 4,
            Resource::Revoked => 5,
        }
    }

    fn from_code(code: u8) -> Option<Resource> {
        match code {
            1 => Some(Resource::WallClock),
            2 => Some(Resource::LpCalls),
            3 => Some(Resource::FixpointPasses),
            4 => Some(Resource::RefinementSteps),
            5 => Some(Resource::Revoked),
            _ => None,
        }
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Resource::WallClock => "wall-clock deadline",
            Resource::LpCalls => "LP-call budget",
            Resource::FixpointPasses => "fixpoint-pass budget",
            Resource::RefinementSteps => "refinement-step budget",
            Resource::Revoked => "budget revoked by the scheduler",
        })
    }
}

/// The error returned by [`check`] and the `consume_*` functions once a
/// resource cap has tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exhausted {
    /// Which resource ran out first.
    pub resource: Resource,
}

impl fmt::Display for Exhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "analysis budget exhausted: {}", self.resource)
    }
}

impl std::error::Error for Exhausted {}

/// Deterministic fault-injection configuration (see module docs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSpec {
    /// Cap LP solve calls at this count.
    pub lp_call: Option<u64>,
    /// Make every checked rational operation after the first `n` overflow.
    pub overflow: Option<u64>,
    /// Impose this wall-clock deadline.
    pub deadline: Option<Duration>,
    /// Panic at the `n`-th LP call (fires at most once per process).
    pub panic_at_lp: Option<u64>,
}

impl FaultSpec {
    /// Parses the `BLAZER_FAULT` syntax: a `|`-separated list of
    /// `lp_call:<n>`, `overflow:<n>`, `deadline:<ms>`, `panic:<n>` clauses.
    /// Malformed clauses are ignored (fault injection is best-effort test
    /// tooling, not user API).
    pub fn parse(spec: &str) -> Self {
        let mut out = FaultSpec::default();
        for clause in spec.split('|') {
            let Some((key, val)) = clause.split_once(':') else { continue };
            let Ok(n) = val.trim().parse::<u64>() else { continue };
            match key.trim() {
                "lp_call" => out.lp_call = Some(n),
                "overflow" => out.overflow = Some(n),
                "deadline" => out.deadline = Some(Duration::from_millis(n)),
                "panic" => out.panic_at_lp = Some(n),
                _ => {}
            }
        }
        out
    }

    fn from_env() -> Option<Self> {
        let spec = std::env::var("BLAZER_FAULT").ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        Some(FaultSpec::parse(&spec))
    }

    /// True when no fault is configured.
    pub fn is_empty(&self) -> bool {
        *self == FaultSpec::default()
    }
}

/// Resource caps for one analysis run. `None` everywhere (the
/// [`Budget::default`]) means unlimited.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock deadline for the whole analysis.
    pub deadline: Option<Duration>,
    /// Cap on LP (simplex) solve calls.
    pub max_lp_calls: Option<u64>,
    /// Cap on abstract-interpreter fixpoint passes.
    pub max_fixpoint_passes: Option<u64>,
    /// Cap on driver refinement steps.
    pub max_refinement_steps: Option<u64>,
    /// Deterministic fault injection (tests only; merged with `BLAZER_FAULT`
    /// at install time).
    pub fault: Option<FaultSpec>,
}

impl Budget {
    /// An unlimited budget.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Sets the wall-clock deadline.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Sets the LP-call cap.
    pub fn with_max_lp_calls(mut self, n: u64) -> Self {
        self.max_lp_calls = Some(n);
        self
    }

    /// Sets the fixpoint-pass cap.
    pub fn with_max_fixpoint_passes(mut self, n: u64) -> Self {
        self.max_fixpoint_passes = Some(n);
        self
    }

    /// Sets the refinement-step cap.
    pub fn with_max_refinement_steps(mut self, n: u64) -> Self {
        self.max_refinement_steps = Some(n);
        self
    }

    /// Sets the fault-injection spec (tests only).
    pub fn with_fault(mut self, fault: FaultSpec) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Whether any cap (or fault) is configured.
    pub fn is_unlimited(&self) -> bool {
        *self == Budget::default()
    }

    /// Activates this budget on the current thread until the returned guard
    /// is dropped. Nested installs stack: the inner budget applies while its
    /// guard lives, then the outer one resumes. The `BLAZER_FAULT`
    /// environment variable, if set, is merged into the fault spec here so
    /// each installation re-reads it deterministically.
    ///
    /// The installed state is shared-capable: [`handle`] hands worker
    /// threads a [`BudgetHandle`] to this same state, so every cap stays a
    /// single global ledger across threads.
    pub fn install(&self) -> BudgetGuard {
        let mut fault = self.fault.clone().unwrap_or_default();
        if let Some(env) = FaultSpec::from_env() {
            fault = FaultSpec {
                lp_call: env.lp_call.or(fault.lp_call),
                overflow: env.overflow.or(fault.overflow),
                deadline: env.deadline.or(fault.deadline),
                panic_at_lp: env.panic_at_lp.or(fault.panic_at_lp),
            };
        }
        let deadline =
            [self.deadline, fault.deadline].into_iter().flatten().min().map(|d| Instant::now() + d);
        let max_lp_calls =
            [self.max_lp_calls, fault.lp_call].into_iter().flatten().min().unwrap_or(u64::MAX);
        let shared = Arc::new(Shared {
            start: Instant::now(),
            deadline,
            max_lp_calls: AtomicU64::new(max_lp_calls),
            max_fixpoint_passes: self.max_fixpoint_passes,
            max_refinement_steps: self.max_refinement_steps,
            lp_calls: AtomicU64::new(0),
            fixpoint_passes: AtomicU64::new(0),
            refinement_steps: AtomicU64::new(0),
            overflow_events: AtomicU64::new(0),
            exhausted: AtomicU8::new(0),
            degradations: Mutex::new(Vec::new()),
            fault_overflow_after: fault.overflow,
            fault_overflow_ops: AtomicU64::new(0),
            fault_panic_at_lp: fault.panic_at_lp,
            rescue_grants: AtomicU32::new(0),
        });
        let previous = ACTIVE.with(|a| a.borrow_mut().replace(shared));
        BudgetGuard { previous }
    }
}

/// What one analysis actually consumed, for `AnalysisOutcome` metadata.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BudgetReport {
    /// LP solve calls consumed (globally, across all worker threads).
    pub lp_calls: u64,
    /// Fixpoint passes consumed.
    pub fixpoint_passes: u64,
    /// Refinement steps consumed.
    pub refinement_steps: u64,
    /// Rational-overflow events absorbed as precision loss.
    pub overflow_events: u64,
    /// Wall-clock time elapsed since the budget was installed.
    pub elapsed: Duration,
    /// The first resource that ran out, if any.
    pub exhausted: Option<Resource>,
    /// Human-readable log of every sound degradation taken.
    pub degradations: Vec<String>,
}

/// The shared, thread-safe budget state. Caps are fixed at install time
/// (except the LP cap, which rescue grants extend atomically); counters are
/// atomics so any number of worker threads consume against one ledger.
#[derive(Debug)]
struct Shared {
    start: Instant,
    deadline: Option<Instant>,
    /// `u64::MAX` encodes "unlimited"; mutated only by LP rescue grants.
    max_lp_calls: AtomicU64,
    max_fixpoint_passes: Option<u64>,
    max_refinement_steps: Option<u64>,
    lp_calls: AtomicU64,
    fixpoint_passes: AtomicU64,
    refinement_steps: AtomicU64,
    overflow_events: AtomicU64,
    /// 0 = not exhausted, otherwise [`Resource::code`] of the first trip.
    exhausted: AtomicU8,
    degradations: Mutex<Vec<String>>,
    fault_overflow_after: Option<u64>,
    fault_overflow_ops: AtomicU64,
    fault_panic_at_lp: Option<u64>,
    rescue_grants: AtomicU32,
}

impl Shared {
    /// The first exhausted resource, if any.
    fn exhausted_resource(&self) -> Option<Resource> {
        Resource::from_code(self.exhausted.load(Ordering::SeqCst))
    }

    /// Records `r` as the exhausted resource unless another trip won the
    /// race; returns the effective first-exhausted resource.
    fn trip(&self, r: Resource) -> Resource {
        match self.exhausted.compare_exchange(0, r.code(), Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => r,
            Err(prev) => Resource::from_code(prev).unwrap_or(r),
        }
    }

    /// Polls the deadline, tripping `WallClock` when it has passed.
    fn deadline_ok(&self) -> bool {
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.trip(Resource::WallClock);
                return false;
            }
        }
        true
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<Arc<Shared>>> = const { RefCell::new(None) };
    /// Overflow events noted *by this thread* (monotonic across installs;
    /// callers diff it around a region of interest).
    static LOCAL_OVERFLOWS: Cell<u64> = const { Cell::new(0) };
}

/// `panic:<n>` fault fires at most once per process, so a harness that
/// isolates the panic with `catch_unwind` does not crash on every subsequent
/// benchmark too.
static PANIC_FAULT_FIRED: AtomicBool = AtomicBool::new(false);

/// RAII guard returned by [`Budget::install`] and [`BudgetHandle::install`];
/// restores the previously installed budget (if any) on drop.
pub struct BudgetGuard {
    previous: Option<Arc<Shared>>,
}

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        ACTIVE.with(|a| *a.borrow_mut() = self.previous.take());
    }
}

impl fmt::Debug for BudgetGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BudgetGuard")
    }
}

/// A cloneable handle to the budget currently installed on some thread.
/// Worker threads install it ([`BudgetHandle::install`]) so their
/// consumption lands on the *same* global ledger as the spawning thread's.
#[derive(Clone, Debug)]
pub struct BudgetHandle {
    shared: Arc<Shared>,
}

impl BudgetHandle {
    /// Activates the shared budget on the current thread until the returned
    /// guard is dropped (stacking like [`Budget::install`]).
    pub fn install(&self) -> BudgetGuard {
        let previous = ACTIVE.with(|a| a.borrow_mut().replace(Arc::clone(&self.shared)));
        BudgetGuard { previous }
    }

    /// Revokes the shared budget: trips the sticky exhaustion cell with
    /// [`Resource::Revoked`] so every thread consuming against this ledger
    /// sees [`Exhausted`] on its next `check`/`consume_*` call and unwinds
    /// through the existing give-up path. A no-op when some resource already
    /// tripped (the first trip always wins the CAS). Returns whether *this*
    /// call performed the revocation.
    pub fn revoke(&self) -> bool {
        self.shared.exhausted_resource().is_none()
            && self.shared.trip(Resource::Revoked) == Resource::Revoked
    }

    /// The first exhausted resource on the shared ledger, if any — readable
    /// without installing the handle on the current thread (a scheduler
    /// observing its workers' ledger).
    pub fn exhausted(&self) -> Option<Resource> {
        self.shared.exhausted_resource()
    }

    /// Consumption counters of the shared ledger, read directly off the
    /// handle (no install needed): `(lp_calls, fixpoint_passes,
    /// refinement_steps)`.
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.shared.lp_calls.load(Ordering::SeqCst),
            self.shared.fixpoint_passes.load(Ordering::SeqCst),
            self.shared.refinement_steps.load(Ordering::SeqCst),
        )
    }
}

/// A handle to the budget installed on the current thread, for handing to
/// worker threads. `None` when no budget is installed.
pub fn handle() -> Option<BudgetHandle> {
    ACTIVE.with(|a| a.borrow().as_ref().map(|s| BudgetHandle { shared: Arc::clone(s) }))
}

fn with_active<R>(f: impl FnOnce(&Shared) -> R) -> Option<R> {
    ACTIVE.with(|a| a.borrow().as_deref().map(f))
}

/// How often (in LP calls) the deadline clock is polled; individual solves
/// are cheap enough that this keeps the overhead negligible while bounding
/// deadline overshoot tightly.
const DEADLINE_POLL_PERIOD: u64 = 16;

/// Checks the sticky exhaustion state and the deadline without consuming
/// anything. Cheap; safe to call in inner loops.
pub fn check() -> Result<(), Exhausted> {
    with_active(|active| {
        if let Some(resource) = active.exhausted_resource() {
            return Err(Exhausted { resource });
        }
        if !active.deadline_ok() {
            return Err(Exhausted { resource: Resource::WallClock });
        }
        Ok(())
    })
    .unwrap_or(Ok(()))
}

/// Consumes one LP solve call. Also the trigger point for the `panic:<n>`
/// fault and the densest deadline poll in the stack.
pub fn consume_lp_call() -> Result<(), Exhausted> {
    let panic_now = with_active(|active| {
        if let Some(resource) = active.exhausted_resource() {
            return Err(Exhausted { resource });
        }
        let calls = active.lp_calls.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some(n) = active.fault_panic_at_lp {
            if calls >= n && !PANIC_FAULT_FIRED.swap(true, Ordering::SeqCst) {
                return Ok(true);
            }
        }
        if calls > active.max_lp_calls.load(Ordering::SeqCst) {
            active.trip(Resource::LpCalls);
            return Err(Exhausted { resource: Resource::LpCalls });
        }
        if calls % DEADLINE_POLL_PERIOD == 1 && !active.deadline_ok() {
            return Err(Exhausted { resource: Resource::WallClock });
        }
        Ok(false)
    })
    .unwrap_or(Ok(false))?;
    if panic_now {
        panic!("injected fault: panic at LP call (BLAZER_FAULT)");
    }
    Ok(())
}

/// Consumes one abstract-interpreter fixpoint pass.
pub fn consume_fixpoint_pass() -> Result<(), Exhausted> {
    with_active(|active| {
        if let Some(resource) = active.exhausted_resource() {
            return Err(Exhausted { resource });
        }
        let passes = active.fixpoint_passes.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some(cap) = active.max_fixpoint_passes {
            if passes > cap {
                active.trip(Resource::FixpointPasses);
                return Err(Exhausted { resource: Resource::FixpointPasses });
            }
        }
        if !active.deadline_ok() {
            return Err(Exhausted { resource: Resource::WallClock });
        }
        Ok(())
    })
    .unwrap_or(Ok(()))
}

/// Consumes one driver refinement step.
pub fn consume_refinement_step() -> Result<(), Exhausted> {
    with_active(|active| {
        if let Some(resource) = active.exhausted_resource() {
            return Err(Exhausted { resource });
        }
        let steps = active.refinement_steps.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some(cap) = active.max_refinement_steps {
            if steps > cap {
                active.trip(Resource::RefinementSteps);
                return Err(Exhausted { resource: Resource::RefinementSteps });
            }
        }
        if !active.deadline_ok() {
            return Err(Exhausted { resource: Resource::WallClock });
        }
        Ok(())
    })
    .unwrap_or(Ok(()))
}

/// The first exhausted resource, if any (sticky).
pub fn exhausted() -> Option<Resource> {
    with_active(|active| active.exhausted_resource()).flatten()
}

/// Polls the wall-clock deadline directly, bypassing the sticky-exhaustion
/// short-circuit of [`check`]: when a softer resource (say the LP-call cap)
/// tripped first, long-running loops still need to notice that the deadline
/// has since passed. One `Instant::now` per call; safe in inner loops.
pub fn deadline_exceeded() -> bool {
    with_active(|active| !active.deadline_ok()).unwrap_or(false)
}

/// Records a sound degradation for the final [`BudgetReport`]. Duplicate
/// messages are collapsed: a starved run can deny thousands of identical
/// LP calls, and one note per distinct event is what a reader wants.
pub fn note_degradation(msg: impl Into<String>) {
    let msg = msg.into();
    with_active(|active| {
        let mut degradations = active.degradations.lock().unwrap_or_else(|e| e.into_inner());
        if degradations.len() < 256 && !degradations.contains(&msg) {
            degradations.push(msg);
        }
    });
}

/// Records one absorbed rational-overflow event (on the global ledger and
/// on this thread's local counter).
pub fn note_overflow() {
    with_active(|active| {
        active.overflow_events.fetch_add(1, Ordering::SeqCst);
        LOCAL_OVERFLOWS.with(|c| c.set(c.get() + 1));
    });
}

/// Number of overflow events absorbed so far across all threads sharing the
/// installed budget.
pub fn overflow_events() -> u64 {
    with_active(|active| active.overflow_events.load(Ordering::SeqCst)).unwrap_or(0)
}

/// Number of overflow events noted *by the current thread* (monotonic; the
/// driver diffs this around one trail's bound computation to decide whether
/// to degrade to a coarser domain — a sibling worker's overflow must not
/// trigger a degradation here).
pub fn local_overflow_events() -> u64 {
    LOCAL_OVERFLOWS.with(|c| c.get())
}

/// Fault hook for checked rational arithmetic: returns `true` when the
/// `overflow:<n>` fault says this operation should report overflow.
pub fn inject_overflow() -> bool {
    with_active(|active| {
        let Some(after) = active.fault_overflow_after else { return false };
        active.fault_overflow_ops.fetch_add(1, Ordering::SeqCst) + 1 > after
    })
    .unwrap_or(false)
}

/// Grants extra LP calls so the driver can retry a budget-starved trail with
/// a coarser (cheaper) domain. Clears a sticky `LpCalls` exhaustion; refuses
/// when the deadline (which cannot be extended) has passed, after too many
/// grants, or when a harder resource tripped first. Returns whether the
/// rescue was granted.
pub fn grant_lp_rescue(extra: u64) -> bool {
    with_active(|active| {
        if active.rescue_grants.load(Ordering::SeqCst) >= 8 || !active.deadline_ok() {
            return false;
        }
        let current = active.exhausted.load(Ordering::SeqCst);
        if current != 0 && current != Resource::LpCalls.code() {
            return false;
        }
        // Clear the sticky LpCalls trip (or keep a clean slate). Losing the
        // race to a concurrent harder trip refuses the rescue.
        if active
            .exhausted
            .compare_exchange(current, 0, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return false;
        }
        active.rescue_grants.fetch_add(1, Ordering::SeqCst);
        if active.max_lp_calls.load(Ordering::SeqCst) != u64::MAX {
            active.max_lp_calls.store(
                active.lp_calls.load(Ordering::SeqCst).saturating_add(extra),
                Ordering::SeqCst,
            );
        }
        true
    })
    .unwrap_or(false)
}

/// Snapshot of consumption so far (empty/default when no budget is
/// installed).
pub fn report() -> BudgetReport {
    with_active(|active| BudgetReport {
        lp_calls: active.lp_calls.load(Ordering::SeqCst),
        fixpoint_passes: active.fixpoint_passes.load(Ordering::SeqCst),
        refinement_steps: active.refinement_steps.load(Ordering::SeqCst),
        overflow_events: active.overflow_events.load(Ordering::SeqCst),
        elapsed: active.start.elapsed(),
        exhausted: active.exhausted_resource(),
        degradations: active.degradations.lock().unwrap_or_else(|e| e.into_inner()).clone(),
    })
    .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_budget_installed_is_unlimited() {
        assert!(check().is_ok());
        for _ in 0..1000 {
            assert!(consume_lp_call().is_ok());
            assert!(consume_fixpoint_pass().is_ok());
            assert!(consume_refinement_step().is_ok());
        }
        assert_eq!(exhausted(), None);
        assert_eq!(report(), BudgetReport::default());
    }

    #[test]
    fn lp_cap_trips_and_sticks() {
        let _guard = Budget::unlimited().with_max_lp_calls(3).install();
        assert!(consume_lp_call().is_ok());
        assert!(consume_lp_call().is_ok());
        assert!(consume_lp_call().is_ok());
        let err = consume_lp_call().unwrap_err();
        assert_eq!(err.resource, Resource::LpCalls);
        // Sticky: everything reports exhaustion now.
        assert!(check().is_err());
        assert!(consume_fixpoint_pass().is_err());
        assert_eq!(exhausted(), Some(Resource::LpCalls));
        let report = report();
        assert_eq!(report.exhausted, Some(Resource::LpCalls));
        assert_eq!(report.lp_calls, 4);
    }

    #[test]
    fn deadline_trips() {
        let _guard = Budget::unlimited().with_deadline(Duration::ZERO).install();
        let err = check().unwrap_err();
        assert_eq!(err.resource, Resource::WallClock);
        assert_eq!(exhausted(), Some(Resource::WallClock));
    }

    #[test]
    fn guard_restores_previous_budget() {
        let _outer = Budget::unlimited().with_max_lp_calls(100).install();
        consume_lp_call().unwrap();
        {
            let _inner = Budget::unlimited().with_max_lp_calls(1).install();
            consume_lp_call().unwrap();
            assert!(consume_lp_call().is_err());
        }
        // Outer budget resumed, with its own counter.
        assert!(check().is_ok());
        assert_eq!(report().lp_calls, 1);
    }

    #[test]
    fn fault_spec_parses_clauses() {
        let f = FaultSpec::parse("lp_call:10|overflow:3|deadline:250|panic:7");
        assert_eq!(f.lp_call, Some(10));
        assert_eq!(f.overflow, Some(3));
        assert_eq!(f.deadline, Some(Duration::from_millis(250)));
        assert_eq!(f.panic_at_lp, Some(7));
        // Malformed clauses are ignored.
        let g = FaultSpec::parse("bogus|lp_call:xyz|overflow:2");
        assert_eq!(g, FaultSpec { overflow: Some(2), ..FaultSpec::default() });
    }

    #[test]
    fn injected_overflow_fires_after_n_ops() {
        let fault = FaultSpec { overflow: Some(2), ..FaultSpec::default() };
        let _guard = Budget::unlimited().with_fault(fault).install();
        assert!(!inject_overflow());
        assert!(!inject_overflow());
        assert!(inject_overflow());
        assert!(inject_overflow());
    }

    #[test]
    fn lp_rescue_extends_the_cap() {
        let _guard = Budget::unlimited().with_max_lp_calls(1).install();
        consume_lp_call().unwrap();
        assert!(consume_lp_call().is_err());
        assert!(grant_lp_rescue(5));
        assert_eq!(exhausted(), None);
        for _ in 0..5 {
            consume_lp_call().unwrap();
        }
        assert!(consume_lp_call().is_err());
    }

    #[test]
    fn degradations_are_logged_and_bounded() {
        let _guard = Budget::unlimited().install();
        for i in 0..300 {
            note_degradation(format!("event {i}"));
        }
        let r = report();
        assert_eq!(r.degradations.len(), 256);
        assert_eq!(r.degradations[0], "event 0");
    }

    #[test]
    fn shared_lp_cap_counts_exactly_once_across_threads() {
        // 8 workers hammer one shared LP-call budget of 100: exactly 100
        // calls succeed globally — never 100 per thread — and once the cap
        // trips every worker's next call reports the same sticky exhaustion.
        const CAP: u64 = 100;
        const THREADS: usize = 8;
        let _guard = Budget::unlimited().with_max_lp_calls(CAP).install();
        let h = handle().expect("budget installed");
        let successes = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    let _g = h.install();
                    for _ in 0..1000 {
                        match consume_lp_call() {
                            Ok(()) => {
                                successes.fetch_add(1, Ordering::SeqCst);
                            }
                            Err(e) => assert_eq!(e.resource, Resource::LpCalls),
                        }
                    }
                });
            }
        });
        assert_eq!(successes.load(Ordering::SeqCst), CAP);
        let r = report();
        assert_eq!(r.exhausted, Some(Resource::LpCalls));
        // The counter may overshoot the cap by at most one in-flight
        // increment per worker (each increments before seeing the trip).
        assert!(r.lp_calls >= CAP && r.lp_calls <= CAP + THREADS as u64, "{}", r.lp_calls);
    }

    #[test]
    fn handle_shares_counters_and_restores_on_drop() {
        let _guard = Budget::unlimited().with_max_fixpoint_passes(10).install();
        let h = handle().expect("budget installed");
        std::thread::scope(|s| {
            s.spawn(|| {
                let _g = h.install();
                consume_fixpoint_pass().unwrap();
                consume_lp_call().unwrap();
                // Guard drops here: the worker thread's slot empties again.
            });
        });
        // The worker's consumption landed on this thread's ledger.
        let r = report();
        assert_eq!(r.fixpoint_passes, 1);
        assert_eq!(r.lp_calls, 1);
    }

    #[test]
    fn revocation_is_sticky_refuses_rescue_and_freezes_counters() {
        let _guard = Budget::unlimited().install();
        let h = handle().expect("budget installed");
        consume_lp_call().unwrap();
        assert!(h.revoke());
        assert!(!h.revoke(), "second revoke is a no-op");
        assert_eq!(exhausted(), Some(Resource::Revoked));
        assert_eq!(h.exhausted(), Some(Resource::Revoked));
        // Every consume path reports the revocation and stops counting.
        let (lp_before, fp_before, rs_before) = h.counters();
        for _ in 0..10 {
            assert_eq!(consume_lp_call().unwrap_err().resource, Resource::Revoked);
            assert_eq!(consume_fixpoint_pass().unwrap_err().resource, Resource::Revoked);
            assert_eq!(consume_refinement_step().unwrap_err().resource, Resource::Revoked);
            assert_eq!(check().unwrap_err().resource, Resource::Revoked);
        }
        assert_eq!(h.counters(), (lp_before, fp_before, rs_before));
        // A revoked ledger cannot be resurrected by an LP rescue grant.
        assert!(!grant_lp_rescue(1000));
        assert_eq!(report().exhausted, Some(Resource::Revoked));
    }

    #[test]
    fn revoke_loses_to_an_earlier_trip() {
        let _guard = Budget::unlimited().with_max_lp_calls(1).install();
        let h = handle().expect("budget installed");
        consume_lp_call().unwrap();
        assert!(consume_lp_call().is_err());
        assert!(!h.revoke(), "an already-tripped ledger is not re-tripped");
        assert_eq!(exhausted(), Some(Resource::LpCalls));
    }

    #[test]
    fn revocation_reaches_sibling_threads() {
        let _guard = Budget::unlimited().install();
        let h = handle().expect("budget installed");
        std::thread::scope(|s| {
            let worker = s.spawn(|| {
                let _g = h.install();
                // Spin until the revocation lands.
                loop {
                    match consume_lp_call() {
                        Ok(()) => std::thread::yield_now(),
                        Err(e) => return e.resource,
                    }
                }
            });
            // Let the worker consume a little before pulling the plug.
            std::thread::sleep(Duration::from_millis(10));
            h.revoke();
            assert_eq!(worker.join().unwrap(), Resource::Revoked);
        });
    }

    #[test]
    fn local_overflow_counter_is_per_thread() {
        let _guard = Budget::unlimited().install();
        let h = handle().expect("budget installed");
        let before = local_overflow_events();
        std::thread::scope(|s| {
            s.spawn(|| {
                let _g = h.install();
                note_overflow();
                note_overflow();
            });
        });
        // Global ledger saw both; this thread's local counter saw neither.
        assert_eq!(overflow_events(), 2);
        assert_eq!(local_overflow_events(), before);
    }
}
