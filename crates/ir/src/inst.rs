//! Instructions, expressions, conditions, and terminators.

use crate::function::{BlockId, VarId};
use crate::BinOp;
use std::fmt;

/// An operand: either an integer constant or a variable reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// An integer literal (booleans are the literals `0` and `1`).
    Const(i64),
    /// A local variable or parameter.
    Var(VarId),
}

impl Operand {
    /// Constructs a constant operand. Shortened to avoid clashing with the
    /// `const` keyword.
    pub fn konst(value: i64) -> Self {
        Operand::Const(value)
    }

    /// The variable referenced by this operand, if any.
    pub fn as_var(self) -> Option<VarId> {
        match self {
            Operand::Var(v) => Some(v),
            Operand::Const(_) => None,
        }
    }
}

impl From<VarId> for Operand {
    fn from(v: VarId) -> Self {
        Operand::Var(v)
    }
}

impl From<i64> for Operand {
    fn from(c: i64) -> Self {
        Operand::Const(c)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Const(c) => write!(f, "{c}"),
            Operand::Var(v) => write!(f, "{v}"),
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not on a canonical 0/1 boolean.
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnOp::Neg => f.write_str("-"),
            UnOp::Not => f.write_str("!"),
        }
    }
}

/// The right-hand side of an [`Inst::Assign`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A copy of an operand.
    Operand(Operand),
    /// A unary operation.
    Unary(UnOp, Operand),
    /// A binary operation.
    Binary(BinOp, Operand, Operand),
    /// The length of an array variable. Nullable arrays report `-1`.
    ArrayLen(VarId),
    /// An element read `arr[idx]`.
    ArrayGet(VarId, Operand),
    /// A freshly allocated array of the given length with all elements zero.
    ArrayNew(Operand),
}

impl Expr {
    /// All variables read by this expression.
    pub fn vars(&self) -> Vec<VarId> {
        fn push(out: &mut Vec<VarId>, op: &Operand) {
            if let Operand::Var(v) = op {
                out.push(*v);
            }
        }
        let mut out = Vec::new();
        match self {
            Expr::Operand(a) | Expr::Unary(_, a) => push(&mut out, a),
            Expr::Binary(_, a, b) => {
                push(&mut out, a);
                push(&mut out, b);
            }
            Expr::ArrayLen(v) => out.push(*v),
            Expr::ArrayGet(v, i) => {
                out.push(*v);
                push(&mut out, i);
            }
            Expr::ArrayNew(n) => push(&mut out, n),
        }
        out
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Operand(a) => write!(f, "{a}"),
            Expr::Unary(op, a) => write!(f, "{op}{a}"),
            Expr::Binary(op, a, b) => write!(f, "{a} {op} {b}"),
            Expr::ArrayLen(v) => write!(f, "len({v})"),
            Expr::ArrayGet(v, i) => write!(f, "{v}[{i}]"),
            Expr::ArrayNew(n) => write!(f, "new_array({n})"),
        }
    }
}

/// Comparison operators used in branch conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The comparison satisfied exactly when `self` is not.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// The comparison with operands swapped (`a < b` ⇔ `b > a`).
    pub fn swap(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Evaluates the comparison on concrete integers.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// The printable operator (`"=="`, `"<"`, ...).
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A branch condition.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Cond {
    /// A comparison between two operands.
    Cmp(CmpOp, Operand, Operand),
    /// A nullness test on an array (`is_null: false` tests "not null").
    ///
    /// Nullness is represented as length `-1` at runtime, but gets its own
    /// condition so the taint analysis can label null tests by the *lookup
    /// arguments* that produced the array rather than by its (possibly
    /// secret) length — matching the paper's footnote that username presence
    /// is not secret while password length is.
    Null {
        /// The array being tested.
        arr: VarId,
        /// `true` for `== null`, `false` for `!= null`.
        is_null: bool,
    },
    /// A nondeterministic choice — the analyses must consider both arms.
    Nondet,
}

impl Cond {
    /// Convenience constructor for a comparison condition.
    pub fn cmp(op: CmpOp, a: impl Into<Operand>, b: impl Into<Operand>) -> Self {
        Cond::Cmp(op, a.into(), b.into())
    }

    /// The condition holding exactly when `self` does not (`Nondet` is its
    /// own negation).
    pub fn negate(&self) -> Cond {
        match self {
            Cond::Cmp(op, a, b) => Cond::Cmp(op.negate(), *a, *b),
            Cond::Null { arr, is_null } => Cond::Null { arr: *arr, is_null: !is_null },
            Cond::Nondet => Cond::Nondet,
        }
    }

    /// All variables read by the condition.
    pub fn vars(&self) -> Vec<VarId> {
        match self {
            Cond::Cmp(_, a, b) => [a.as_var(), b.as_var()].into_iter().flatten().collect(),
            Cond::Null { arr, .. } => vec![*arr],
            Cond::Nondet => Vec::new(),
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::Cmp(op, a, b) => write!(f, "{a} {op} {b}"),
            Cond::Null { arr, is_null: true } => write!(f, "{arr} == null"),
            Cond::Null { arr, is_null: false } => write!(f, "{arr} != null"),
            Cond::Nondet => f.write_str("*"),
        }
    }
}

/// The running-time summary of an external (library) call.
///
/// Blazer "supports manually-specified summaries of running times ... for
/// library calls such as those to the Java BigInteger library" (Sec. 6.1).
/// A summary is either a constant number of cost units or a linear function
/// of one integer argument (an array argument contributes its length).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CallCost {
    /// A fixed cost in machine-model units.
    Const(u64),
    /// `coeff * arg + constant`, where `arg` is the value of the `arg`-th
    /// call argument (its length if the argument is an array), clamped at
    /// zero from below.
    Linear {
        /// Index of the argument the cost depends on.
        arg: usize,
        /// Cost units per unit of the argument.
        coeff: u64,
        /// Fixed additive cost units.
        constant: u64,
    },
}

impl CallCost {
    /// Evaluates the summary against a concrete argument magnitude lookup.
    ///
    /// `arg_magnitude(i)` must return the integer value of the `i`-th
    /// argument, or the length for arrays.
    pub fn eval(&self, arg_magnitude: impl Fn(usize) -> i64) -> u64 {
        match *self {
            CallCost::Const(c) => c,
            CallCost::Linear { arg, coeff, constant } => {
                let m = arg_magnitude(arg).max(0) as u64;
                coeff.saturating_mul(m).saturating_add(constant)
            }
        }
    }
}

impl fmt::Display for CallCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CallCost::Const(c) => write!(f, "cost {c}"),
            CallCost::Linear { arg, coeff, constant } => {
                write!(f, "cost {coeff}*arg{arg}+{constant}")
            }
        }
    }
}

/// A straight-line instruction inside a [`crate::Block`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Inst {
    /// `dst = expr`.
    Assign {
        /// Destination variable.
        dst: VarId,
        /// Right-hand side.
        expr: Expr,
    },
    /// `arr[index] = value`.
    ArraySet {
        /// The array being written.
        arr: VarId,
        /// Element index.
        index: Operand,
        /// New element value.
        value: Operand,
    },
    /// A call to an external function declared in the enclosing
    /// [`crate::Program`]. The callee's behaviour is summarized by its
    /// [`crate::ExternDecl`]; its running time by the recorded [`CallCost`].
    Call {
        /// Destination for the return value, if the callee returns one.
        dst: Option<VarId>,
        /// Name of the [`crate::ExternDecl`] being invoked.
        callee: String,
        /// Actual arguments.
        args: Vec<Operand>,
        /// Running-time summary (copied from the declaration at lowering
        /// time so the IR is self-contained).
        cost: CallCost,
    },
    /// Consume `0` units of time doing nothing (used to keep CFG shapes).
    Nop,
    /// Consume exactly `n` units of time doing nothing else.
    Tick(u64),
    /// Assign an arbitrary (unknown) integer to `dst`.
    Havoc {
        /// Destination variable.
        dst: VarId,
    },
}

impl Inst {
    /// The variable written by this instruction, if any.
    pub fn def(&self) -> Option<VarId> {
        match self {
            Inst::Assign { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            Inst::Havoc { dst } => Some(*dst),
            Inst::ArraySet { .. } | Inst::Nop | Inst::Tick(_) => None,
        }
    }

    /// All variables read by this instruction.
    pub fn uses(&self) -> Vec<VarId> {
        match self {
            Inst::Assign { expr, .. } => expr.vars(),
            Inst::ArraySet { arr, index, value } => {
                let mut v = vec![*arr];
                v.extend(index.as_var());
                v.extend(value.as_var());
                v
            }
            Inst::Call { args, .. } => args.iter().filter_map(|a| a.as_var()).collect(),
            Inst::Nop | Inst::Tick(_) | Inst::Havoc { .. } => Vec::new(),
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Assign { dst, expr } => write!(f, "{dst} = {expr}"),
            Inst::ArraySet { arr, index, value } => write!(f, "{arr}[{index}] = {value}"),
            Inst::Call { dst, callee, args, .. } => {
                if let Some(d) = dst {
                    write!(f, "{d} = ")?;
                }
                write!(f, "{callee}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
            Inst::Nop => f.write_str("nop"),
            Inst::Tick(n) => write!(f, "tick({n})"),
            Inst::Havoc { dst } => write!(f, "{dst} = havoc"),
        }
    }
}

/// The control transfer ending a [`crate::Block`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Terminator {
    /// Unconditional jump.
    Goto(BlockId),
    /// Two-way conditional branch.
    Branch {
        /// The condition selecting the `then_bb` arm.
        cond: Cond,
        /// Successor when the condition holds.
        then_bb: BlockId,
        /// Successor when the condition does not hold.
        else_bb: BlockId,
    },
    /// Return from the function, optionally with a value.
    Return(Option<Operand>),
}

impl Terminator {
    /// The block successors named by this terminator (empty for `Return`).
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Goto(b) => vec![*b],
            Terminator::Branch { then_bb, else_bb, .. } => vec![*then_bb, *else_bb],
            Terminator::Return(_) => Vec::new(),
        }
    }

    /// Whether this terminator is a conditional branch.
    pub fn is_branch(&self) -> bool {
        matches!(self, Terminator::Branch { .. })
    }
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Goto(b) => write!(f, "goto {b}"),
            Terminator::Branch { cond, then_bb, else_bb } => {
                write!(f, "if {cond} then {then_bb} else {else_bb}")
            }
            Terminator::Return(Some(v)) => write!(f, "return {v}"),
            Terminator::Return(None) => f.write_str("return"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_negate_is_involutive() {
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            assert_eq!(op.negate().negate(), op);
        }
    }

    #[test]
    fn cmp_swap_matches_eval() {
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            for a in -2..=2 {
                for b in -2..=2 {
                    assert_eq!(op.eval(a, b), op.swap().eval(b, a), "{op} {a} {b}");
                }
            }
        }
    }

    #[test]
    fn cmp_negate_matches_eval() {
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            for a in -2..=2 {
                for b in -2..=2 {
                    assert_eq!(op.eval(a, b), !op.negate().eval(a, b));
                }
            }
        }
    }

    #[test]
    fn expr_vars_collects_reads() {
        let v0 = VarId::new(0);
        let v1 = VarId::new(1);
        let e = Expr::Binary(crate::BinOp::Add, Operand::Var(v0), Operand::Var(v1));
        assert_eq!(e.vars(), vec![v0, v1]);
        let e = Expr::ArrayGet(v0, Operand::Const(3));
        assert_eq!(e.vars(), vec![v0]);
    }

    #[test]
    fn call_cost_eval() {
        assert_eq!(CallCost::Const(7).eval(|_| 0), 7);
        let lin = CallCost::Linear { arg: 1, coeff: 3, constant: 2 };
        assert_eq!(lin.eval(|i| if i == 1 { 10 } else { 99 }), 32);
        // Negative magnitudes (e.g. null arrays) clamp to zero.
        assert_eq!(lin.eval(|_| -5), 2);
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::Branch {
            cond: Cond::Nondet,
            then_bb: BlockId::new(1),
            else_bb: BlockId::new(2),
        };
        assert_eq!(t.successors(), vec![BlockId::new(1), BlockId::new(2)]);
        assert!(Terminator::Return(None).successors().is_empty());
    }

    #[test]
    fn inst_def_use() {
        let v0 = VarId::new(0);
        let v1 = VarId::new(1);
        let i = Inst::Assign { dst: v0, expr: Expr::Operand(Operand::Var(v1)) };
        assert_eq!(i.def(), Some(v0));
        assert_eq!(i.uses(), vec![v1]);
        let i = Inst::ArraySet { arr: v0, index: Operand::Var(v1), value: Operand::Const(0) };
        assert_eq!(i.def(), None);
        assert_eq!(i.uses(), vec![v0, v1]);
    }

    #[test]
    fn display_round_trips_are_readable() {
        let v0 = VarId::new(0);
        let i = Inst::Assign {
            dst: v0,
            expr: Expr::Binary(crate::BinOp::Mul, Operand::Var(v0), Operand::Const(2)),
        };
        assert_eq!(i.to_string(), "v0 = v0 * 2");
    }
}
