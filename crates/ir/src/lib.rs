//! # blazer-ir
//!
//! The intermediate representation used by the Blazer reproduction.
//!
//! The original Blazer tool (PLDI 2017) analyzed Java bytecode through the
//! WALA front-end, which produces an SSA-based control-flow graph. This crate
//! is the Rust substitute: a small, explicitly-typed imperative IR organized
//! as a control-flow graph of basic blocks. Every analysis in the workspace
//! (taint, abstract interpretation, bound analysis, trail construction)
//! consumes this IR; none of them ever look at surface syntax.
//!
//! The main types are:
//!
//! * [`Program`] — a collection of [`Function`]s and [`ExternDecl`]s.
//! * [`Function`] — parameters (with [`SecurityLabel`]s), local variables,
//!   and basic [`Block`]s ending in a [`Terminator`].
//! * [`Cfg`] — the derived control-flow graph with a single virtual exit
//!   node, successor/predecessor maps, and traversal orders.
//! * [`cost::CostModel`] — the pluggable observer machine model: the
//!   paper's per-instruction weight counting (it counts "each bytecode
//!   instruction ... as a single unit", Sec. 5), or a cache-aware model
//!   where array-access cost depends on abstract L1D cache state.
//!
//! ```
//! use blazer_ir::builder::FunctionBuilder;
//! use blazer_ir::{Type, SecurityLabel, Cond, CmpOp, Operand};
//!
//! // fn constant(high: int #high) { if high == 0 { } else { } }
//! let mut b = FunctionBuilder::new("constant");
//! let high = b.param("high", Type::Int, SecurityLabel::High);
//! let then_bb = b.new_block();
//! let else_bb = b.new_block();
//! let join = b.new_block();
//! b.branch(Cond::cmp(CmpOp::Eq, high, Operand::konst(0)), then_bb, else_bb);
//! b.switch_to(then_bb);
//! b.goto(join);
//! b.switch_to(else_bb);
//! b.goto(join);
//! b.switch_to(join);
//! b.ret(None);
//! let f = b.finish();
//! assert_eq!(f.blocks().len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod builder;
pub mod cfg;
pub mod cost;
pub mod dominators;
pub mod function;
pub mod inst;
pub mod json;
pub mod pretty;
pub mod program;
pub mod types;

pub use cfg::{Cfg, Edge, NodeId};
pub use function::{Block, BlockId, Function, Param, VarId, VarInfo};
pub use inst::{CallCost, CmpOp, Cond, Expr, Inst, Operand, Terminator, UnOp};
pub use program::{ExternDecl, Program};
pub use types::{SecurityLabel, Type};

/// Binary arithmetic and logical operators available in [`Expr::Binary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division (truncating, like Java). Division by zero traps.
    Div,
    /// Integer remainder. Remainder by zero traps.
    Rem,
    /// Bitwise and (also used for logical and on canonical 0/1 booleans).
    And,
    /// Bitwise or (also used for logical or on canonical 0/1 booleans).
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// Arithmetic shift left.
    Shl,
    /// Arithmetic shift right.
    Shr,
}

impl BinOp {
    /// A short printable mnemonic (`"+"`, `"&"`, ...).
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
        }
    }
}

impl std::fmt::Display for BinOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.symbol())
    }
}
