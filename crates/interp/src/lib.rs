//! # blazer-interp
//!
//! A concrete interpreter for `blazer-ir` with instruction-cost accounting.
//!
//! The static analyses in this workspace prove facts about the running time
//! of programs under the paper's simple machine model ("each bytecode
//! instruction is counted as a single unit", Sec. 5). This interpreter
//! *executes* programs under the same model, which gives the test suite a
//! ground truth:
//!
//! * property tests check that, for random inputs, the measured cost of a
//!   run lies within the symbolic `[lower, upper]` bounds computed by
//!   `blazer-bounds`;
//! * attack specifications from `blazer-core` are *concretized* by searching
//!   for two inputs that agree on low values but produce different costs;
//! * the trace of CFG edges a run takes is checked for membership in the
//!   trail that was supposed to cover it.
//!
//! External calls are resolved by an [`ExternOracle`]; the default
//! [`SeededOracle`] produces deterministic pseudo-random values respecting
//! each [`blazer_ir::ExternDecl`]'s declared result ranges.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod oracle;
pub mod value;

pub use exec::{ExecError, Interp, Trace};
pub use oracle::{ExternOracle, SeededOracle};
pub use value::Value;
