//! The interpreter proper.

use crate::oracle::ExternOracle;
use crate::value::Value;
use blazer_ir::cost::{CacheParams, CostModel};
use blazer_ir::{
    BinOp, Cfg, Cond, Edge, Expr, Function, Inst, NodeId, Operand, Program, Terminator, UnOp,
};
use std::rc::Rc;

/// A concrete `sets × ways` set-associative LRU data cache mirroring
/// [`CacheParams`]: lines are `(array identity, line number)` pairs, one
/// MRU-first list per set. State is per run; the abstract side's must-hit
/// claims are sound against any starting state, so persistence across
/// blocks only adds hits.
#[derive(Debug)]
struct ConcreteCache {
    sets: Vec<Vec<(usize, i64)>>,
    ways: usize,
    line: i64,
}

impl ConcreteCache {
    fn new(p: &CacheParams) -> ConcreteCache {
        ConcreteCache { sets: vec![Vec::new(); p.sets], ways: p.ways.max(1), line: p.line as i64 }
    }

    /// Touches element `idx` of the array identified by pointer `arr`;
    /// returns whether the access hit.
    fn access(&mut self, arr: usize, idx: i64) -> bool {
        let line_no = idx.div_euclid(self.line);
        let key = (arr, line_no);
        let slot = (arr >> 4).wrapping_add(line_no as usize).wrapping_mul(0x9E37_79B9)
            % self.sets.len().max(1);
        let set = &mut self.sets[slot];
        match set.iter().position(|&k| k == key) {
            Some(p) => {
                let k = set.remove(p);
                set.insert(0, k);
                true
            }
            None => {
                set.insert(0, key);
                set.truncate(self.ways);
                false
            }
        }
    }
}

/// An execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Division or remainder by zero.
    DivisionByZero,
    /// Array access on null.
    NullDereference,
    /// Array index out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: i64,
        /// The array length.
        len: i64,
    },
    /// The step budget was exhausted (probable nontermination).
    OutOfFuel,
    /// Wrong number or types of inputs.
    BadInput(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::DivisionByZero => f.write_str("division by zero"),
            ExecError::NullDereference => f.write_str("null dereference"),
            ExecError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            ExecError::OutOfFuel => f.write_str("out of fuel"),
            ExecError::BadInput(m) => write!(f, "bad input: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// The observable outcome of a run: the CFG edges taken, the total cost
/// under the machine model, and the returned value.
#[derive(Debug, Clone)]
pub struct Trace {
    /// CFG edges in execution order (ending with an edge into the virtual
    /// exit node).
    pub edges: Vec<Edge>,
    /// Total running time in machine-model units.
    pub cost: u64,
    /// The value returned, if any.
    pub ret: Option<Value>,
}

/// An interpreter for one program.
#[derive(Debug)]
pub struct Interp<'p> {
    program: &'p Program,
    cost_model: CostModel,
    fuel: u64,
}

impl<'p> Interp<'p> {
    /// An interpreter over `program` with the unit cost model and a default
    /// fuel budget of one million steps.
    pub fn new(program: &'p Program) -> Self {
        Interp { program, cost_model: CostModel::unit(), fuel: 1_000_000 }
    }

    /// Overrides the cost model.
    pub fn with_cost_model(mut self, m: CostModel) -> Self {
        self.cost_model = m;
        self
    }

    /// Overrides the fuel budget (number of instructions executed).
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Runs `func` on `inputs`.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] for runtime faults, nontermination (fuel),
    /// or malformed inputs.
    pub fn run(
        &self,
        func: &str,
        inputs: &[Value],
        oracle: &mut dyn ExternOracle,
    ) -> Result<Trace, ExecError> {
        let f = self
            .program
            .function(func)
            .ok_or_else(|| ExecError::BadInput(format!("no function `{func}`")))?;
        if inputs.len() != f.params().len() {
            return Err(ExecError::BadInput(format!(
                "expected {} inputs, got {}",
                f.params().len(),
                inputs.len()
            )));
        }
        let cfg = Cfg::new(f);
        let mut env: Vec<Value> = f
            .vars()
            .iter()
            .map(|v| match v.ty {
                blazer_ir::Type::Array => Value::null(),
                _ => Value::Int(0),
            })
            .collect();
        for (p, v) in f.params().iter().zip(inputs) {
            env[p.var.index()] = v.clone();
        }

        let mut edges = Vec::new();
        let mut cost: u64 = 0;
        let mut fuel = self.fuel;
        let mut block = f.entry();
        // Cache-aware models measure against a real per-run L1D cache.
        let mut cache = self.cost_model.cache_params().map(ConcreteCache::new);
        loop {
            let b = f.block(block);
            for inst in &b.insts {
                if fuel == 0 {
                    return Err(ExecError::OutOfFuel);
                }
                fuel -= 1;
                cost += self.exec_inst(f, inst, &mut env, &mut cache, oracle)?;
            }
            cost += self.cost_model.term_cost(&b.term);
            let from = NodeId::block(block);
            match &b.term {
                Terminator::Goto(t) => {
                    edges.push(Edge::new(from, NodeId::block(*t)));
                    block = *t;
                }
                Terminator::Branch { cond, then_bb, else_bb } => {
                    let taken = self.eval_cond(cond, &env, oracle)?;
                    let target = if taken { *then_bb } else { *else_bb };
                    edges.push(Edge::new(from, NodeId::block(target)));
                    block = target;
                }
                Terminator::Return(v) => {
                    edges.push(Edge::new(from, cfg.exit()));
                    let ret = v.as_ref().map(|op| self.eval_operand(op, &env));
                    return Ok(Trace { edges, cost, ret });
                }
            }
            if fuel == 0 {
                return Err(ExecError::OutOfFuel);
            }
            fuel -= 1;
        }
    }

    /// Prices one successfully-performed access to `arr[idx]`: hit/miss
    /// latency through the concrete cache when the model carries one, else
    /// the exact weight `flat`.
    fn access_cost(
        &self,
        cache: &mut Option<ConcreteCache>,
        a: &Rc<std::cell::RefCell<Vec<i64>>>,
        idx: i64,
        flat: u64,
    ) -> u64 {
        match cache {
            Some(cc) => {
                let p = self.cost_model.cache_params().expect("cache implies params");
                if cc.access(Rc::as_ptr(a) as usize, idx) {
                    p.hit
                } else {
                    p.miss
                }
            }
            None => flat,
        }
    }

    fn exec_inst(
        &self,
        f: &Function,
        inst: &Inst,
        env: &mut [Value],
        cache: &mut Option<ConcreteCache>,
        oracle: &mut dyn ExternOracle,
    ) -> Result<u64, ExecError> {
        match inst {
            Inst::Assign { dst, expr } => {
                let v = self.eval_expr(expr, env)?;
                // Price before the destination write so an aliasing
                // `a = a[i]`-shaped assignment reads the old binding.
                let c = match expr {
                    Expr::ArrayGet(arr, index) if cache.is_some() => {
                        let idx = self.eval_operand(index, env).as_int().expect("typed index");
                        let Value::Arr(Some(a)) = &env[arr.index()] else {
                            unreachable!("eval_expr succeeded on this read")
                        };
                        self.access_cost(cache, a, idx, 0)
                    }
                    _ => self.cost_model.weights().assign,
                };
                env[dst.index()] = v;
                Ok(c)
            }
            Inst::ArraySet { arr, index, value } => {
                let idx = self.eval_operand(index, env).as_int().expect("typed index");
                let val = self.eval_operand(value, env).as_int().expect("typed value");
                match &env[arr.index()] {
                    Value::Arr(None) => Err(ExecError::NullDereference),
                    Value::Arr(Some(a)) => {
                        {
                            let mut cells = a.borrow_mut();
                            let len = cells.len() as i64;
                            if idx < 0 || idx >= len {
                                return Err(ExecError::IndexOutOfBounds { index: idx, len });
                            }
                            cells[idx as usize] = val;
                        }
                        Ok(self.access_cost(cache, a, idx, self.cost_model.weights().array_set))
                    }
                    Value::Int(_) => unreachable!("typed array store"),
                }
            }
            Inst::Call { dst, callee, args, cost } => {
                let decl = self
                    .program
                    .extern_decl(callee)
                    .unwrap_or_else(|| panic!("undeclared extern `{callee}`"));
                let arg_vals: Vec<Value> = args.iter().map(|a| self.eval_operand(a, env)).collect();
                let c = cost.eval(|i| arg_vals[i].magnitude());
                let result = oracle.call(decl, &arg_vals);
                if let Some(d) = dst {
                    env[d.index()] = result.unwrap_or(Value::Int(0));
                }
                let _ = f;
                Ok(c)
            }
            Inst::Nop => Ok(0),
            Inst::Tick(n) => Ok(*n),
            Inst::Havoc { dst } => {
                env[dst.index()] = Value::Int(oracle.havoc());
                Ok(self.cost_model.weights().havoc)
            }
        }
    }

    fn eval_operand(&self, op: &Operand, env: &[Value]) -> Value {
        match op {
            Operand::Const(c) => Value::Int(*c),
            Operand::Var(v) => env[v.index()].clone(),
        }
    }

    fn eval_expr(&self, expr: &Expr, env: &[Value]) -> Result<Value, ExecError> {
        match expr {
            Expr::Operand(op) => Ok(self.eval_operand(op, env)),
            Expr::Unary(UnOp::Neg, a) => {
                let n = self.eval_operand(a, env).as_int().expect("typed neg");
                Ok(Value::Int(n.wrapping_neg()))
            }
            Expr::Unary(UnOp::Not, a) => {
                let n = self.eval_operand(a, env).as_int().expect("typed not");
                Ok(Value::bool(n == 0))
            }
            Expr::Binary(op, a, b) => {
                let x = self.eval_operand(a, env).as_int().expect("typed lhs");
                let y = self.eval_operand(b, env).as_int().expect("typed rhs");
                let v = match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::Div => {
                        if y == 0 {
                            return Err(ExecError::DivisionByZero);
                        }
                        x.wrapping_div(y)
                    }
                    BinOp::Rem => {
                        if y == 0 {
                            return Err(ExecError::DivisionByZero);
                        }
                        x.wrapping_rem(y)
                    }
                    BinOp::And => x & y,
                    BinOp::Or => x | y,
                    BinOp::Xor => x ^ y,
                    BinOp::Shl => x.wrapping_shl((y & 63) as u32),
                    BinOp::Shr => x.wrapping_shr((y & 63) as u32),
                };
                Ok(Value::Int(v))
            }
            Expr::ArrayLen(v) => Ok(Value::Int(env[v.index()].array_len().expect("typed array"))),
            Expr::ArrayGet(v, i) => {
                let idx = self.eval_operand(i, env).as_int().expect("typed index");
                match &env[v.index()] {
                    Value::Arr(None) => Err(ExecError::NullDereference),
                    Value::Arr(Some(a)) => {
                        let a = a.borrow();
                        let len = a.len() as i64;
                        if idx < 0 || idx >= len {
                            return Err(ExecError::IndexOutOfBounds { index: idx, len });
                        }
                        Ok(Value::Int(a[idx as usize]))
                    }
                    Value::Int(_) => unreachable!("typed array read"),
                }
            }
            Expr::ArrayNew(n) => {
                let len = self.eval_operand(n, env).as_int().expect("typed length");
                if len < 0 {
                    return Err(ExecError::BadInput(format!("new array of length {len}")));
                }
                Ok(Value::array(vec![0; len as usize]))
            }
        }
    }

    fn eval_cond(
        &self,
        cond: &Cond,
        env: &[Value],
        oracle: &mut dyn ExternOracle,
    ) -> Result<bool, ExecError> {
        match cond {
            Cond::Cmp(op, a, b) => {
                let x = self.eval_operand(a, env).as_int().expect("typed cmp lhs");
                let y = self.eval_operand(b, env).as_int().expect("typed cmp rhs");
                Ok(op.eval(x, y))
            }
            Cond::Null { arr, is_null } => Ok(env[arr.index()].is_null() == *is_null),
            Cond::Nondet => Ok(oracle.havoc() % 2 == 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::SeededOracle;
    use blazer_lang::compile;

    fn run(src: &str, func: &str, inputs: &[Value]) -> Trace {
        let p = compile(src).unwrap();
        Interp::new(&p).run(func, inputs, &mut SeededOracle::new(1)).unwrap()
    }

    #[test]
    fn straightline_cost() {
        // 2 assigns + return = 2*1 + 1 = 3 units.
        let t = run(
            "fn f(x: int) -> int { let y: int = x + 1; let z: int = y * 2; return z; }",
            "f",
            &[Value::Int(5)],
        );
        assert_eq!(t.ret, Some(Value::Int(12)));
        assert_eq!(t.cost, 3);
    }

    #[test]
    fn loop_cost_scales_linearly() {
        let src = "fn f(n: int) { let i: int = 0; while (i < n) { i = i + 1; } }";
        let c0 = run(src, "f", &[Value::Int(0)]).cost;
        let c5 = run(src, "f", &[Value::Int(5)]).cost;
        let c10 = run(src, "f", &[Value::Int(10)]).cost;
        // Per-iteration increment is constant.
        assert_eq!(c10 - c5, c5 - c0);
        assert!(c5 > c0);
    }

    #[test]
    fn example1_from_paper_is_balanced() {
        // Sec. 2 Example 1: both branches take time linear in low with the
        // same coefficient.
        let src = "fn foo(high: int #high, low: int) { \
            if (high == 0) { \
                let i: int = 0; \
                while (i < low) { i = i + 1; } \
            } else { \
                let i: int = low; \
                while (i > 0) { i = i - 1; } \
            } \
        }";
        for low in [0i64, 3, 17] {
            let a = run(src, "foo", &[Value::Int(0), Value::Int(low)]).cost;
            let b = run(src, "foo", &[Value::Int(99), Value::Int(low)]).cost;
            assert_eq!(a, b, "low={low}");
        }
    }

    #[test]
    fn tenex_bug_leaks_prefix_length() {
        // Early-exit comparison: cost grows with the matching prefix.
        let src = "fn check(pw: array #high, guess: array) -> bool { \
            let i: int = 0; \
            while (i < len(guess)) { \
                if (i >= len(pw)) { return false; } \
                if (guess[i] != pw[i]) { return false; } \
                i = i + 1; \
            } \
            return true; \
        }";
        let guess = Value::array(vec![1, 2, 3, 4]);
        let pw_far = Value::array(vec![9, 9, 9, 9]);
        let pw_near = Value::array(vec![1, 2, 3, 9]);
        let c_far = run(src, "check", &[pw_far, guess.clone()]).cost;
        let c_near = run(src, "check", &[pw_near, guess]).cost;
        assert!(c_near > c_far, "longer matching prefix must cost more");
    }

    #[test]
    fn traces_end_at_exit() {
        let src = "fn f(n: int) -> int { if (n > 0) { return 1; } return 0; }";
        let p = compile(src).unwrap();
        let f = p.function("f").unwrap();
        let cfg = Cfg::new(f);
        let t = Interp::new(&p).run("f", &[Value::Int(1)], &mut SeededOracle::new(0)).unwrap();
        assert_eq!(t.edges.last().unwrap().to, cfg.exit());
        // Consecutive edges chain.
        for w in t.edges.windows(2) {
            assert_eq!(w[0].to, w[1].from);
        }
    }

    #[test]
    fn runtime_errors() {
        let div = "fn f(n: int) -> int { return 1 / n; }";
        let p = compile(div).unwrap();
        let e = Interp::new(&p).run("f", &[Value::Int(0)], &mut SeededOracle::new(0)).unwrap_err();
        assert_eq!(e, ExecError::DivisionByZero);

        let oob = "fn f(a: array) -> int { return a[10]; }";
        let p = compile(oob).unwrap();
        let e = Interp::new(&p)
            .run("f", &[Value::array(vec![1])], &mut SeededOracle::new(0))
            .unwrap_err();
        assert!(matches!(e, ExecError::IndexOutOfBounds { index: 10, len: 1 }));

        let null = "fn f(a: array) -> int { return a[0]; }";
        let p = compile(null).unwrap();
        let e = Interp::new(&p).run("f", &[Value::null()], &mut SeededOracle::new(0)).unwrap_err();
        assert_eq!(e, ExecError::NullDereference);
    }

    #[test]
    fn fuel_bounds_infinite_loops() {
        let src = "fn f() { let i: int = 1; while (i > 0) { i = i + 1; } }";
        let p = compile(src).unwrap();
        let e =
            Interp::new(&p).with_fuel(1000).run("f", &[], &mut SeededOracle::new(0)).unwrap_err();
        assert_eq!(e, ExecError::OutOfFuel);
    }

    #[test]
    fn call_costs_counted() {
        let src = "extern fn md5(p: array) -> array cost 500 len 16..16;\n\
                   fn f(p: array) { let h: array = md5(p); }";
        let t = run(src, "f", &[Value::array(vec![1, 2])]);
        // call (500) + return (1).
        assert_eq!(t.cost, 501);
    }

    #[test]
    fn linear_call_cost_uses_magnitude() {
        let src = "extern fn hash(p: array) -> int cost 3 * arg0 + 7;\n\
                   fn f(p: array) -> int { return hash(p); }";
        let t = run(src, "f", &[Value::array(vec![0; 10])]);
        // 3*10+7 (call) + return = 37 + 1.
        assert_eq!(t.cost, 38);
    }

    #[test]
    fn null_condition() {
        let src = "extern fn get() -> array cost 1 len -1..-1;\n\
                   fn f() -> bool { let a: array = get(); if (a == null) { return true; } return false; }";
        let t = run(src, "f", &[]);
        assert_eq!(t.ret, Some(Value::bool(true)));
    }

    #[test]
    fn arithmetic_operators() {
        let src = "fn f(a: int, b: int) -> int {             let s: int = a << 2;             let t: int = s >> 1;             let u: int = t % 7;             let v: int = u * b - a / 2;             return v;         }";
        let t = run(src, "f", &[Value::Int(9), Value::Int(3)]);
        // s = 36, t = 18, u = 4, v = 12 - 4 = 8.
        assert_eq!(t.ret, Some(Value::Int(8)));
    }

    #[test]
    fn wrapping_arithmetic_does_not_panic() {
        let src = "fn f(a: int) -> int { return a * a; }";
        let t = run(src, "f", &[Value::Int(i64::MAX)]);
        assert!(t.ret.is_some());
    }

    #[test]
    fn negative_division_truncates_toward_zero() {
        let src = "fn f(a: int) -> int { return a / 2; }";
        assert_eq!(run(src, "f", &[Value::Int(-7)]).ret, Some(Value::Int(-3)));
        assert_eq!(run(src, "f", &[Value::Int(7)]).ret, Some(Value::Int(3)));
    }

    #[test]
    fn array_stores_persist_through_aliases() {
        let src = "fn f(a: array) -> int {             a[0] = 42;             let b: int = a[0];             return b;         }";
        let arr = Value::array(vec![0, 0]);
        let p = compile(src).unwrap();
        let t = Interp::new(&p)
            .run("f", std::slice::from_ref(&arr), &mut SeededOracle::new(0))
            .unwrap();
        assert_eq!(t.ret, Some(Value::Int(42)));
        // The caller's array reference observed the store (Java reference
        // semantics).
        if let Value::Arr(Some(cells)) = arr {
            assert_eq!(cells.borrow()[0], 42);
        } else {
            panic!("array expected");
        }
    }

    #[test]
    fn boolean_values_via_diamonds() {
        let src = "fn f(a: int, b: int) -> bool {             let c: bool = a < b && b < 10;             return !c;         }";
        assert_eq!(run(src, "f", &[Value::Int(1), Value::Int(5)]).ret, Some(Value::bool(false)));
        assert_eq!(run(src, "f", &[Value::Int(7), Value::Int(5)]).ret, Some(Value::bool(true)));
    }

    #[test]
    fn tick_statement() {
        let t = run("fn f() { tick(41); }", "f", &[]);
        assert_eq!(t.cost, 42); // tick + return
    }

    fn run_with_model(src: &str, func: &str, inputs: &[Value], model: CostModel) -> Trace {
        let p = compile(src).unwrap();
        Interp::new(&p).with_cost_model(model).run(func, inputs, &mut SeededOracle::new(1)).unwrap()
    }

    #[test]
    fn cache_model_prices_repeated_reads_as_hits() {
        let src = "fn f(a: array) -> int { \
            let x: int = a[0]; \
            let y: int = a[0]; \
            return 0; \
        }";
        let arr = Value::array(vec![5, 6]);
        // Unit model: 2 assigns + return.
        let unit = run_with_model(src, "f", std::slice::from_ref(&arr), CostModel::unit());
        assert_eq!(unit.cost, 3);
        // Cache model (hit 1, miss 8): cold miss, then a line hit, + return.
        let cached = run_with_model(src, "f", std::slice::from_ref(&arr), CostModel::cache_aware());
        assert_eq!(cached.cost, 8 + 1 + 1);
    }

    #[test]
    fn cache_model_misses_on_distinct_lines_and_hits_within_one() {
        // Default line holds 4 elements: a[0] and a[2] share a line,
        // a[100] does not.
        let src = "fn f(a: array) -> int { \
            let x: int = a[0]; \
            let y: int = a[2]; \
            let z: int = a[100]; \
            return 0; \
        }";
        let arr = Value::array(vec![0; 128]);
        let t = run_with_model(src, "f", std::slice::from_ref(&arr), CostModel::cache_aware());
        // miss(8) + same-line hit(1) + miss(8) + return(1).
        assert_eq!(t.cost, 18);
    }

    #[test]
    fn cache_model_array_writes_allocate_lines() {
        let src = "fn f(a: array) -> int { \
            a[0] = 7; \
            let x: int = a[1]; \
            return 0; \
        }";
        let arr = Value::array(vec![0; 4]);
        let t = run_with_model(src, "f", std::slice::from_ref(&arr), CostModel::cache_aware());
        // Write-allocating miss(8) + same-line read hit(1) + return(1).
        assert_eq!(t.cost, 10);
    }

    #[test]
    fn weighted_model_reprices_writes_and_branches() {
        let src = "fn f(a: array, n: int) { a[0] = n; if (n > 0) { } }";
        let arr = Value::array(vec![0; 2]);
        let inputs = [arr, Value::Int(1)];
        let unit = run_with_model(src, "f", &inputs, CostModel::unit());
        let weighted = run_with_model(src, "f", &inputs, CostModel::weighted());
        // array_set 1 -> 2, branch 1 -> 2; everything else unchanged.
        assert_eq!(weighted.cost, unit.cost + 2);
    }
}
