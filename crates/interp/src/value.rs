//! Runtime values.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// A runtime value: an integer (booleans are 0/1) or an array reference.
///
/// Arrays have Java reference semantics: assigning an array variable aliases
/// the same backing store. `null` is a distinguished array value whose
/// length reads as `-1`.
#[derive(Debug, Clone)]
pub enum Value {
    /// An integer (also used for booleans).
    Int(i64),
    /// A (possibly null) array of integers.
    Arr(Option<Rc<RefCell<Vec<i64>>>>),
}

impl Value {
    /// A fresh, non-aliased array with the given contents.
    pub fn array(contents: Vec<i64>) -> Value {
        Value::Arr(Some(Rc::new(RefCell::new(contents))))
    }

    /// The null array.
    pub fn null() -> Value {
        Value::Arr(None)
    }

    /// A boolean.
    pub fn bool(b: bool) -> Value {
        Value::Int(i64::from(b))
    }

    /// The integer inside, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::Arr(_) => None,
        }
    }

    /// The array length: `-1` for null, `None` for non-arrays.
    pub fn array_len(&self) -> Option<i64> {
        match self {
            Value::Arr(None) => Some(-1),
            Value::Arr(Some(a)) => Some(a.borrow().len() as i64),
            Value::Int(_) => None,
        }
    }

    /// Whether this is the null array.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Arr(None))
    }

    /// The "magnitude" used by linear call-cost summaries: the value for
    /// ints, the length for arrays (`-1` for null).
    pub fn magnitude(&self) -> i64 {
        match self {
            Value::Int(n) => *n,
            Value::Arr(None) => -1,
            Value::Arr(Some(a)) => a.borrow().len() as i64,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Arr(None), Value::Arr(None)) => true,
            (Value::Arr(Some(a)), Value::Arr(Some(b))) => *a.borrow() == *b.borrow(),
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Arr(None) => f.write_str("null"),
            Value::Arr(Some(a)) => write!(f, "{:?}", a.borrow()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths() {
        assert_eq!(Value::null().array_len(), Some(-1));
        assert_eq!(Value::array(vec![1, 2, 3]).array_len(), Some(3));
        assert_eq!(Value::Int(5).array_len(), None);
    }

    #[test]
    fn aliasing() {
        let a = Value::array(vec![0]);
        let b = a.clone();
        if let (Value::Arr(Some(ra)), Value::Arr(Some(rb))) = (&a, &b) {
            ra.borrow_mut()[0] = 7;
            assert_eq!(rb.borrow()[0], 7);
        } else {
            panic!("arrays expected");
        }
    }

    #[test]
    fn equality_compares_contents() {
        assert_eq!(Value::array(vec![1, 2]), Value::array(vec![1, 2]));
        assert_ne!(Value::array(vec![1]), Value::array(vec![2]));
        assert_ne!(Value::array(vec![]), Value::null());
        assert_eq!(Value::bool(true), Value::Int(1));
    }

    #[test]
    fn magnitudes() {
        assert_eq!(Value::Int(-3).magnitude(), -3);
        assert_eq!(Value::null().magnitude(), -1);
        assert_eq!(Value::array(vec![9; 4]).magnitude(), 4);
    }
}
