//! Oracles resolving external calls and havocs.

use crate::value::Value;
use blazer_ir::{ExternDecl, Type};
use std::collections::BTreeMap;

/// Resolves the *values* produced by external calls and `havoc`.
///
/// The running-time of a call is always taken from its [`blazer_ir::CallCost`]
/// summary by the interpreter itself; the oracle only supplies data.
pub trait ExternOracle {
    /// Produces the return value for a call to `decl` with `args` (ignored
    /// by the default implementations). Returns `None` for void callees.
    fn call(&mut self, decl: &ExternDecl, args: &[Value]) -> Option<Value>;

    /// Produces a value for a `havoc` instruction.
    fn havoc(&mut self) -> i64;
}

/// A deterministic oracle driven by a seed (splitmix64 stream).
///
/// Results respect the declaration: scalar results are small integers, array
/// results have a length drawn from the declared `ret_len` range (so a
/// nullable declaration sometimes returns null). Named overrides allow tests
/// and the attack-concretization search to pin specific callees.
#[derive(Debug, Clone)]
pub struct SeededOracle {
    state: u64,
    overrides: BTreeMap<String, Value>,
}

impl SeededOracle {
    /// An oracle with the given seed.
    pub fn new(seed: u64) -> Self {
        SeededOracle { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15), overrides: BTreeMap::new() }
    }

    /// Pins calls to `name` to always return `value`.
    pub fn with_override(mut self, name: impl Into<String>, value: Value) -> Self {
        self.overrides.insert(name.into(), value);
        self
    }

    fn next(&mut self) -> u64 {
        // splitmix64.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn in_range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + (self.next() % span) as i64
    }
}

impl ExternOracle for SeededOracle {
    fn call(&mut self, decl: &ExternDecl, _args: &[Value]) -> Option<Value> {
        if let Some(v) = self.overrides.get(&decl.name) {
            return Some(v.clone());
        }
        match decl.ret? {
            Type::Int => Some(Value::Int(self.in_range(0, 255))),
            Type::Bool => Some(Value::Int(self.in_range(0, 1))),
            Type::Array => {
                let (lo, hi) = decl.ret_len.unwrap_or((0, 16));
                let len = self.in_range(lo, hi);
                if len < 0 {
                    Some(Value::null())
                } else {
                    let contents = (0..len).map(|_| self.in_range(0, 255)).collect();
                    Some(Value::array(contents))
                }
            }
        }
    }

    fn havoc(&mut self) -> i64 {
        self.in_range(-128, 127)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array_decl(lo: i64, hi: i64) -> ExternDecl {
        ExternDecl {
            name: "get".into(),
            params: vec![],
            ret: Some(Type::Array),
            ret_label: blazer_ir::SecurityLabel::Low,
            cost: blazer_ir::CallCost::Const(1),
            ret_len: Some((lo, hi)),
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let d = array_decl(0, 8);
        let mut a = SeededOracle::new(7);
        let mut b = SeededOracle::new(7);
        for _ in 0..10 {
            assert_eq!(a.call(&d, &[]), b.call(&d, &[]));
            assert_eq!(a.havoc(), b.havoc());
        }
    }

    #[test]
    fn lengths_respect_declared_range() {
        let d = array_decl(2, 5);
        let mut o = SeededOracle::new(42);
        for _ in 0..50 {
            let v = o.call(&d, &[]).unwrap();
            let len = v.array_len().unwrap();
            assert!((2..=5).contains(&len), "{len}");
        }
    }

    #[test]
    fn nullable_range_produces_null_sometimes() {
        let d = array_decl(-1, 0);
        let mut o = SeededOracle::new(1);
        let mut nulls = 0;
        for _ in 0..64 {
            if o.call(&d, &[]).unwrap().is_null() {
                nulls += 1;
            }
        }
        assert!(nulls > 0 && nulls < 64);
    }

    #[test]
    fn overrides_pin_results() {
        let d = array_decl(0, 8);
        let mut o = SeededOracle::new(3).with_override("get", Value::array(vec![9, 9]));
        assert_eq!(o.call(&d, &[]), Some(Value::array(vec![9, 9])));
    }
}
