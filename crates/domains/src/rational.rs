//! Exact rational arithmetic over `i128`.
//!
//! All domain computations in this crate use [`Rat`] so that fixpoints and
//! entailment checks are exact — there is no floating-point rounding anywhere
//! in the analysis. Numerators and denominators are `i128`.
//!
//! # Overflow policy
//!
//! Comparison is *always exact*: when the cross products exceed `i128` it
//! falls back to 256-bit arithmetic, so `Ord` is total and never lossy.
//!
//! Arithmetic overflow is recoverable rather than fatal. The checked
//! variants ([`Rat::checked_add`] etc.) return `None` on overflow; the
//! operator impls (`+`, `*`, ...) stay total by returning a saturated
//! placeholder and raising a thread-local *overflow flag*. Layers that can
//! absorb imprecision soundly (the simplex solver, polyhedra operations, the
//! driver's per-trail retry ladder) poll the flag with [`take_overflow`] and
//! discard the tainted result — dropping a constraint, answering
//! "unbounded", or re-running with a coarser domain — instead of aborting
//! the whole analysis. A result computed while the flag is raised must never
//! be trusted.

use std::cell::Cell;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

thread_local! {
    static OVERFLOW: Cell<bool> = const { Cell::new(false) };
}

/// Raises the thread-local overflow flag (done automatically by the
/// saturating operator impls).
pub fn set_overflow() {
    OVERFLOW.with(|f| f.set(true));
}

/// Whether an unabsorbed arithmetic overflow has occurred on this thread.
pub fn overflow_occurred() -> bool {
    OVERFLOW.with(|f| f.get())
}

/// Reads and clears the overflow flag. Absorption points call this to claim
/// responsibility for the precision loss.
pub fn take_overflow() -> bool {
    OVERFLOW.with(|f| f.replace(false))
}

/// Placeholder magnitude for saturated results (large, but far enough from
/// `i128::MAX` that follow-up small-coefficient arithmetic saturates again
/// rather than wrapping).
const SATURATED: i128 = i128::MAX >> 1;

/// An exact rational number `num / den` with `den > 0` and `gcd(num, den) = 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rat {
    /// Zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// One.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Constructs `num / den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "rational with zero denominator");
        let g = gcd(num, den);
        let (mut num, mut den) = if g == 0 { (0, 1) } else { (num / g, den / g) };
        if den < 0 {
            num = -num;
            den = -den;
        }
        Rat { num, den }
    }

    /// Constructs an integer rational.
    pub fn int(n: i128) -> Rat {
        Rat { num: n, den: 1 }
    }

    /// The numerator (sign-carrying).
    pub fn numer(self) -> i128 {
        self.num
    }

    /// The denominator (always positive).
    pub fn denom(self) -> i128 {
        self.den
    }

    /// Whether this is exactly zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Whether this is an integer.
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Whether this is strictly positive.
    pub fn is_positive(self) -> bool {
        self.num > 0
    }

    /// Whether this is strictly negative.
    pub fn is_negative(self) -> bool {
        self.num < 0
    }

    /// Sign as -1, 0, or 1.
    pub fn signum(self) -> i128 {
        self.num.signum()
    }

    /// The absolute value.
    pub fn abs(self) -> Rat {
        Rat { num: self.num.abs(), den: self.den }
    }

    /// The multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    pub fn recip(self) -> Rat {
        assert!(self.num != 0, "reciprocal of zero");
        Rat::new(self.den, self.num)
    }

    /// Largest integer `≤ self`.
    pub fn floor(self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Smallest integer `≥ self`.
    pub fn ceil(self) -> i128 {
        -((-self.num).div_euclid(self.den))
    }

    /// Rounds toward negative infinity to a [`Rat`].
    pub fn floor_rat(self) -> Rat {
        Rat::int(self.floor())
    }

    /// Rounds toward positive infinity to a [`Rat`].
    pub fn ceil_rat(self) -> Rat {
        Rat::int(self.ceil())
    }

    /// Minimum of two rationals.
    pub fn min(self, other: Rat) -> Rat {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two rationals.
    pub fn max(self, other: Rat) -> Rat {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Converts to `f64` (for reporting only — never used in the analysis).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Checked addition: `None` on `i128` overflow (or under an injected
    /// `overflow:<n>` fault, see `blazer_ir::budget`).
    pub fn checked_add(self, rhs: Rat) -> Option<Rat> {
        if blazer_ir::budget::inject_overflow() {
            return None;
        }
        // a/b + c/d = (a*d + c*b) / (b*d); reduce via gcd of denominators
        // first to keep magnitudes small.
        let g = gcd(self.den, rhs.den);
        let lhs_scale = rhs.den / g;
        let rhs_scale = self.den / g;
        let num = self
            .num
            .checked_mul(lhs_scale)
            .and_then(|a| rhs.num.checked_mul(rhs_scale).and_then(|b| a.checked_add(b)))?;
        let den = self.den.checked_mul(lhs_scale)?;
        Some(Rat::new(num, den))
    }

    /// Checked subtraction: `None` on `i128` overflow.
    pub fn checked_sub(self, rhs: Rat) -> Option<Rat> {
        self.checked_add(-rhs)
    }

    /// Checked multiplication: `None` on `i128` overflow (or under an
    /// injected fault).
    pub fn checked_mul(self, rhs: Rat) -> Option<Rat> {
        if blazer_ir::budget::inject_overflow() {
            return None;
        }
        // Cross-reduce before multiplying.
        let g1 = gcd(self.num, rhs.den).max(1);
        let g2 = gcd(rhs.num, self.den).max(1);
        let num = (self.num / g1).checked_mul(rhs.num / g2)?;
        let den = (self.den / g2).checked_mul(rhs.den / g1)?;
        Some(Rat::new(num, den))
    }

    /// Checked division: `None` on `i128` overflow.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero (API misuse, like [`Rat::recip`]).
    pub fn checked_div(self, rhs: Rat) -> Option<Rat> {
        self.checked_mul(rhs.recip())
    }

    /// The saturated placeholder returned by the total operators on
    /// overflow: a huge value carrying `sign`.
    fn saturated(sign: i128) -> Rat {
        Rat { num: if sign < 0 { -SATURATED } else { SATURATED }, den: 1 }
    }
}

impl Default for Rat {
    fn default() -> Self {
        Rat::ZERO
    }
}

impl From<i64> for Rat {
    fn from(n: i64) -> Self {
        Rat::int(n as i128)
    }
}

impl From<i32> for Rat {
    fn from(n: i32) -> Self {
        Rat::int(n as i128)
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        self.checked_add(rhs).unwrap_or_else(|| {
            set_overflow();
            // The sum's sign: a + b >= 0 ⇔ a >= -b, decided by the exact
            // (never-overflowing) comparison.
            Rat::saturated(if self >= -rhs { 1 } else { -1 })
        })
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        self + (-rhs)
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        self.checked_mul(rhs).unwrap_or_else(|| {
            set_overflow();
            Rat::saturated(self.signum() * rhs.signum())
        })
    }
}

impl Div for Rat {
    type Output = Rat;
    #[allow(clippy::suspicious_arithmetic_impl)] // division via reciprocal
    fn div(self, rhs: Rat) -> Rat {
        self * rhs.recip()
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat { num: -self.num, den: self.den }
    }
}

impl AddAssign for Rat {
    fn add_assign(&mut self, rhs: Rat) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rat {
    fn sub_assign(&mut self, rhs: Rat) {
        *self = *self - rhs;
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        // a/b ? c/d  ⇔  a*d ? c*b  (denominators positive). When the cross
        // products exceed i128 the comparison is completed exactly in 256
        // bits, so ordering is total and never lossy.
        let lhs = self.num.checked_mul(other.den);
        let rhs = other.num.checked_mul(self.den);
        match (lhs, rhs) {
            (Some(l), Some(r)) => l.cmp(&r),
            _ => cmp_products_wide(self.num, other.den, other.num, self.den),
        }
    }
}

/// Compares `a*b` with `c*d` exactly via 256-bit magnitudes.
fn cmp_products_wide(a: i128, b: i128, c: i128, d: i128) -> Ordering {
    let sign_ab = a.signum() * b.signum();
    let sign_cd = c.signum() * d.signum();
    if sign_ab != sign_cd {
        return sign_ab.cmp(&sign_cd);
    }
    let mag_ab = u256_mul(a.unsigned_abs(), b.unsigned_abs());
    let mag_cd = u256_mul(c.unsigned_abs(), d.unsigned_abs());
    if sign_ab >= 0 {
        mag_ab.cmp(&mag_cd)
    } else {
        mag_cd.cmp(&mag_ab)
    }
}

/// Full 256-bit product of two `u128`s as `(high, low)` limbs.
fn u256_mul(a: u128, b: u128) -> (u128, u128) {
    const MASK: u128 = (1u128 << 64) - 1;
    let (a_hi, a_lo) = (a >> 64, a & MASK);
    let (b_hi, b_lo) = (b >> 64, b & MASK);
    let lo = a_lo * b_lo;
    let mid1 = a_lo * b_hi;
    let mid2 = a_hi * b_lo;
    let hi = a_hi * b_hi;
    let (low, carry1) = lo.overflowing_add(mid1 << 64);
    let (low, carry2) = low.overflowing_add(mid2 << 64);
    let high = hi + (mid1 >> 64) + (mid2 >> 64) + u128::from(carry1) + u128::from(carry2);
    (high, low)
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_normalizes() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(0, 5), Rat::ZERO);
        assert_eq!(Rat::new(0, -5).denom(), 1);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        let half = Rat::new(1, 2);
        let third = Rat::new(1, 3);
        assert_eq!(half + third, Rat::new(5, 6));
        assert_eq!(half - third, Rat::new(1, 6));
        assert_eq!(half * third, Rat::new(1, 6));
        assert_eq!(half / third, Rat::new(3, 2));
        assert_eq!(-half, Rat::new(-1, 2));
    }

    #[test]
    fn floors_and_ceils() {
        assert_eq!(Rat::new(7, 2).floor(), 3);
        assert_eq!(Rat::new(7, 2).ceil(), 4);
        assert_eq!(Rat::new(-7, 2).floor(), -4);
        assert_eq!(Rat::new(-7, 2).ceil(), -3);
        assert_eq!(Rat::int(5).floor(), 5);
        assert_eq!(Rat::int(5).ceil(), 5);
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::new(-1, 2) < Rat::ZERO);
        assert_eq!(Rat::new(2, 6).cmp(&Rat::new(1, 3)), Ordering::Equal);
        assert_eq!(Rat::new(1, 2).max(Rat::new(2, 3)), Rat::new(2, 3));
        assert_eq!(Rat::new(1, 2).min(Rat::new(2, 3)), Rat::new(1, 2));
    }

    #[test]
    fn display() {
        assert_eq!(Rat::new(3, 1).to_string(), "3");
        assert_eq!(Rat::new(-3, 2).to_string(), "-3/2");
    }

    #[test]
    fn comparison_is_exact_beyond_i128() {
        // Cross products are ~2^180: the wide path must decide this.
        let big = 1i128 << 90;
        let x = Rat::new(big + 1, big); // 1 + 2^-90
        let y = Rat::new(big + 2, big + 1); // 1 + 1/(2^90+1)
        assert!(x > y);
        assert!(y < x);
        assert_eq!(x.cmp(&x), Ordering::Equal);
        assert!(-x < -y);
        assert!(!overflow_occurred(), "comparison must not raise the flag");
    }

    #[test]
    fn checked_arithmetic_reports_overflow() {
        let big = Rat::int(i128::MAX / 2);
        assert_eq!(big.checked_mul(big), None);
        assert_eq!(Rat::int(i128::MAX - 1).checked_add(Rat::int(i128::MAX - 1)), None);
        assert_eq!(Rat::int(2).checked_add(Rat::int(3)), Some(Rat::int(5)));
        assert_eq!(Rat::new(1, 2).checked_mul(Rat::new(2, 3)), Some(Rat::new(1, 3)));
    }

    #[test]
    fn operators_saturate_and_raise_the_flag() {
        let _ = take_overflow();
        let big = Rat::int(i128::MAX / 2);
        let prod = big * big;
        assert!(take_overflow(), "overflow flag must be raised");
        assert!(prod.is_positive(), "saturated placeholder keeps the sign");
        let neg = big * Rat::int(-3);
        assert!(take_overflow());
        assert!(neg.is_negative());
        let sum = Rat::int(i128::MAX - 1) + Rat::int(i128::MAX - 1);
        assert!(take_overflow());
        assert!(sum.is_positive());
        // Flag is clear again; ordinary arithmetic does not raise it.
        let _ = Rat::new(1, 2) + Rat::new(1, 3);
        assert!(!overflow_occurred());
    }

    #[test]
    fn injected_overflow_fault_hits_checked_ops() {
        let fault = blazer_ir::budget::FaultSpec { overflow: Some(0), ..Default::default() };
        let _guard = blazer_ir::budget::Budget::unlimited().with_fault(fault).install();
        assert_eq!(Rat::int(1).checked_add(Rat::int(1)), None);
        let _ = take_overflow();
        let v = Rat::int(1) + Rat::int(1);
        assert!(take_overflow());
        assert_eq!(v, Rat::saturated(1));
    }

    proptest! {
        #[test]
        fn field_laws(a in -1000i128..1000, b in 1i128..100, c in -1000i128..1000, d in 1i128..100) {
            let x = Rat::new(a, b);
            let y = Rat::new(c, d);
            prop_assert_eq!(x + y, y + x);
            prop_assert_eq!(x * y, y * x);
            prop_assert_eq!(x + Rat::ZERO, x);
            prop_assert_eq!(x * Rat::ONE, x);
            prop_assert_eq!(x - x, Rat::ZERO);
            if !y.is_zero() {
                prop_assert_eq!((x / y) * y, x);
            }
        }

        #[test]
        fn floor_ceil_bracket(a in -10_000i128..10_000, b in 1i128..1000) {
            let x = Rat::new(a, b);
            prop_assert!(Rat::int(x.floor()) <= x);
            prop_assert!(x <= Rat::int(x.ceil()));
            prop_assert!(x.ceil() - x.floor() <= 1);
        }

        #[test]
        fn ordering_consistent_with_f64(a in -1000i128..1000, b in 1i128..100, c in -1000i128..1000, d in 1i128..100) {
            let x = Rat::new(a, b);
            let y = Rat::new(c, d);
            if x < y {
                prop_assert!(x.to_f64() <= y.to_f64());
            }
        }
    }
}
