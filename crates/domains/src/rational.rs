//! Exact rational arithmetic over `i128`.
//!
//! All domain computations in this crate use [`Rat`] so that fixpoints and
//! entailment checks are exact — there is no floating-point rounding anywhere
//! in the analysis. Numerators and denominators are `i128`; the analysis
//! works with small coefficients (loop strides, thresholds, cost weights), so
//! overflow indicates a bug rather than a large-input condition and panics
//! with a clear message.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// An exact rational number `num / den` with `den > 0` and `gcd(num, den) = 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rat {
    /// Zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// One.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Constructs `num / den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "rational with zero denominator");
        let g = gcd(num, den);
        let (mut num, mut den) = if g == 0 { (0, 1) } else { (num / g, den / g) };
        if den < 0 {
            num = -num;
            den = -den;
        }
        Rat { num, den }
    }

    /// Constructs an integer rational.
    pub fn int(n: i128) -> Rat {
        Rat { num: n, den: 1 }
    }

    /// The numerator (sign-carrying).
    pub fn numer(self) -> i128 {
        self.num
    }

    /// The denominator (always positive).
    pub fn denom(self) -> i128 {
        self.den
    }

    /// Whether this is exactly zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Whether this is an integer.
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Whether this is strictly positive.
    pub fn is_positive(self) -> bool {
        self.num > 0
    }

    /// Whether this is strictly negative.
    pub fn is_negative(self) -> bool {
        self.num < 0
    }

    /// Sign as -1, 0, or 1.
    pub fn signum(self) -> i128 {
        self.num.signum()
    }

    /// The absolute value.
    pub fn abs(self) -> Rat {
        Rat { num: self.num.abs(), den: self.den }
    }

    /// The multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    pub fn recip(self) -> Rat {
        assert!(self.num != 0, "reciprocal of zero");
        Rat::new(self.den, self.num)
    }

    /// Largest integer `≤ self`.
    pub fn floor(self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Smallest integer `≥ self`.
    pub fn ceil(self) -> i128 {
        -((-self.num).div_euclid(self.den))
    }

    /// Rounds toward negative infinity to a [`Rat`].
    pub fn floor_rat(self) -> Rat {
        Rat::int(self.floor())
    }

    /// Rounds toward positive infinity to a [`Rat`].
    pub fn ceil_rat(self) -> Rat {
        Rat::int(self.ceil())
    }

    /// Minimum of two rationals.
    pub fn min(self, other: Rat) -> Rat {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two rationals.
    pub fn max(self, other: Rat) -> Rat {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Converts to `f64` (for reporting only — never used in the analysis).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    fn checked(num: Option<i128>, den: Option<i128>, op: &str) -> Rat {
        match (num, den) {
            (Some(n), Some(d)) => Rat::new(n, d),
            _ => panic!("rational overflow during {op}"),
        }
    }
}

impl Default for Rat {
    fn default() -> Self {
        Rat::ZERO
    }
}

impl From<i64> for Rat {
    fn from(n: i64) -> Self {
        Rat::int(n as i128)
    }
}

impl From<i32> for Rat {
    fn from(n: i32) -> Self {
        Rat::int(n as i128)
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        // a/b + c/d = (a*d + c*b) / (b*d); reduce via gcd of denominators
        // first to keep magnitudes small.
        let g = gcd(self.den, rhs.den);
        let lhs_scale = rhs.den / g;
        let rhs_scale = self.den / g;
        let num = self
            .num
            .checked_mul(lhs_scale)
            .and_then(|a| rhs.num.checked_mul(rhs_scale).and_then(|b| a.checked_add(b)));
        let den = self.den.checked_mul(lhs_scale);
        Rat::checked(num, den, "add")
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        self + (-rhs)
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        // Cross-reduce before multiplying.
        let g1 = gcd(self.num, rhs.den).max(1);
        let g2 = gcd(rhs.num, self.den).max(1);
        let num = (self.num / g1).checked_mul(rhs.num / g2);
        let den = (self.den / g2).checked_mul(rhs.den / g1);
        Rat::checked(num, den, "mul")
    }
}

impl Div for Rat {
    type Output = Rat;
    fn div(self, rhs: Rat) -> Rat {
        self * rhs.recip()
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat { num: -self.num, den: self.den }
    }
}

impl AddAssign for Rat {
    fn add_assign(&mut self, rhs: Rat) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rat {
    fn sub_assign(&mut self, rhs: Rat) {
        *self = *self - rhs;
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        // a/b ? c/d  ⇔  a*d ? c*b  (denominators positive).
        let lhs = self.num.checked_mul(other.den);
        let rhs = other.num.checked_mul(self.den);
        match (lhs, rhs) {
            (Some(l), Some(r)) => l.cmp(&r),
            _ => panic!("rational overflow during comparison"),
        }
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_normalizes() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(0, 5), Rat::ZERO);
        assert_eq!(Rat::new(0, -5).denom(), 1);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        let half = Rat::new(1, 2);
        let third = Rat::new(1, 3);
        assert_eq!(half + third, Rat::new(5, 6));
        assert_eq!(half - third, Rat::new(1, 6));
        assert_eq!(half * third, Rat::new(1, 6));
        assert_eq!(half / third, Rat::new(3, 2));
        assert_eq!(-half, Rat::new(-1, 2));
    }

    #[test]
    fn floors_and_ceils() {
        assert_eq!(Rat::new(7, 2).floor(), 3);
        assert_eq!(Rat::new(7, 2).ceil(), 4);
        assert_eq!(Rat::new(-7, 2).floor(), -4);
        assert_eq!(Rat::new(-7, 2).ceil(), -3);
        assert_eq!(Rat::int(5).floor(), 5);
        assert_eq!(Rat::int(5).ceil(), 5);
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::new(-1, 2) < Rat::ZERO);
        assert_eq!(Rat::new(2, 6).cmp(&Rat::new(1, 3)), Ordering::Equal);
        assert_eq!(Rat::new(1, 2).max(Rat::new(2, 3)), Rat::new(2, 3));
        assert_eq!(Rat::new(1, 2).min(Rat::new(2, 3)), Rat::new(1, 2));
    }

    #[test]
    fn display() {
        assert_eq!(Rat::new(3, 1).to_string(), "3");
        assert_eq!(Rat::new(-3, 2).to_string(), "-3/2");
    }

    proptest! {
        #[test]
        fn field_laws(a in -1000i128..1000, b in 1i128..100, c in -1000i128..1000, d in 1i128..100) {
            let x = Rat::new(a, b);
            let y = Rat::new(c, d);
            prop_assert_eq!(x + y, y + x);
            prop_assert_eq!(x * y, y * x);
            prop_assert_eq!(x + Rat::ZERO, x);
            prop_assert_eq!(x * Rat::ONE, x);
            prop_assert_eq!(x - x, Rat::ZERO);
            if !y.is_zero() {
                prop_assert_eq!((x / y) * y, x);
            }
        }

        #[test]
        fn floor_ceil_bracket(a in -10_000i128..10_000, b in 1i128..1000) {
            let x = Rat::new(a, b);
            prop_assert!(Rat::int(x.floor()) <= x);
            prop_assert!(x <= Rat::int(x.ceil()));
            prop_assert!(x.ceil() - x.floor() <= 1);
        }

        #[test]
        fn ordering_consistent_with_f64(a in -1000i128..1000, b in 1i128..100, c in -1000i128..1000, d in 1i128..100) {
            let x = Rat::new(a, b);
            let y = Rat::new(c, d);
            if x < y {
                prop_assert!(x.to_f64() <= y.to_f64());
            }
        }
    }
}
