//! Convex polyhedra in constraint representation.
//!
//! This is the workspace's stand-in for the Parma Polyhedra Library. A
//! [`Polyhedron`] is a conjunction of linear [`Constraint`]s over a fixed
//! number of dimensions. Operations:
//!
//! * meet (conjunction) and emptiness via exact LP feasibility;
//! * entailment of a constraint via exact LP optimization;
//! * join as the *weak join* — the strongest conjunction of constraints from
//!   either argument valid for both (a sound over-approximation of the
//!   convex hull that is precise on the box- and difference-shaped
//!   invariants the bound analysis needs);
//! * projection (dimension elimination) by Gaussian elimination on
//!   equalities plus Fourier–Motzkin on inequalities — this is also how
//!   `blazer-bounds` extracts *parametric* bounds of a cost expression in
//!   terms of input-seed dimensions;
//! * standard constraint-dropping widening.

use crate::linexpr::{Constraint, ConstraintKind, LinExpr};
use crate::rational::Rat;
use crate::simplex::{LpResult, Simplex};

use std::collections::BTreeSet;
use std::fmt;

/// A rational convex polyhedron over `dims` dimensions.
#[derive(Debug, Clone)]
pub struct Polyhedron {
    dims: usize,
    /// Invariant: when `empty` is false, `cons` is feasible; when `empty` is
    /// true, `cons` is ignored.
    cons: Vec<Constraint>,
    empty: bool,
}

/// Above this many constraints, meets trigger an LP-based redundancy sweep.
const REDUNDANCY_LIMIT: usize = 48;

impl Polyhedron {
    /// The universe polyhedron (no constraints).
    pub fn top(dims: usize) -> Self {
        Polyhedron { dims, cons: Vec::new(), empty: false }
    }

    /// The empty polyhedron.
    pub fn bottom(dims: usize) -> Self {
        Polyhedron { dims, cons: Vec::new(), empty: true }
    }

    /// Builds a polyhedron from constraints (checking feasibility).
    pub fn from_constraints(dims: usize, cons: Vec<Constraint>) -> Self {
        let mut p = Polyhedron::top(dims);
        for c in cons {
            p.add_constraint(c);
        }
        p
    }

    /// The number of dimensions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The constraint system (empty slice for both top and bottom — check
    /// [`Polyhedron::is_empty`] to distinguish them).
    pub fn constraints(&self) -> &[Constraint] {
        if self.empty {
            &[]
        } else {
            &self.cons
        }
    }

    /// Whether this is the empty polyhedron.
    pub fn is_empty(&self) -> bool {
        self.empty
    }

    /// Whether this is the universe (no constraints and not empty).
    pub fn is_top(&self) -> bool {
        !self.empty && self.cons.is_empty()
    }

    /// Conjoins one constraint, detecting emptiness.
    pub fn add_constraint(&mut self, c: Constraint) {
        if self.empty {
            return;
        }
        match c.is_trivial() {
            Some(true) => return,
            Some(false) => {
                self.empty = true;
                self.cons.clear();
                return;
            }
            None => {}
        }
        let c = c.normalize();
        if self.cons.contains(&c) {
            return;
        }
        self.cons.push(c);
        if !Simplex::feasible(&self.cons) {
            self.empty = true;
            self.cons.clear();
        } else if self.cons.len() > REDUNDANCY_LIMIT {
            self.remove_redundant();
        }
    }

    /// Conjoins all constraints of `other`.
    pub fn meet(&mut self, other: &Polyhedron) {
        assert_eq!(self.dims, other.dims, "dimension mismatch in meet");
        if other.empty {
            self.empty = true;
            self.cons.clear();
            return;
        }
        for c in &other.cons {
            self.add_constraint(c.clone());
        }
    }

    /// Whether every point of the polyhedron satisfies `c`.
    pub fn entails(&self, c: &Constraint) -> bool {
        if self.empty {
            return true;
        }
        if let Some(t) = c.is_trivial() {
            return t;
        }
        // Syntactic fast path: the constraint (or the equality implying an
        // inequality) is literally present.
        let n = c.normalize();
        if self.cons.contains(&n) {
            return true;
        }
        if n.kind == ConstraintKind::GeZero {
            let as_eq = Constraint::eq_zero(n.expr.clone()).normalize();
            if self.cons.contains(&as_eq) {
                return true;
            }
        }
        let min_ok = match Simplex::minimize(&c.expr, &self.cons) {
            LpResult::Optimal(v) => v >= Rat::ZERO,
            LpResult::Unbounded => false,
            LpResult::Infeasible => true,
        };
        match c.kind {
            ConstraintKind::GeZero => min_ok,
            ConstraintKind::EqZero => {
                min_ok
                    && match Simplex::maximize(&c.expr, &self.cons) {
                        LpResult::Optimal(v) => v <= Rat::ZERO,
                        LpResult::Unbounded => false,
                        LpResult::Infeasible => true,
                    }
            }
        }
    }

    /// Whether `self ⊇ other` (as point sets).
    pub fn includes(&self, other: &Polyhedron) -> bool {
        assert_eq!(self.dims, other.dims, "dimension mismatch in includes");
        if other.empty {
            return true;
        }
        if self.empty {
            return false;
        }
        self.cons.iter().all(|c| other.entails(c))
    }

    /// The weak join, strengthened with affine-combination equalities:
    /// keeps each constraint of either argument that the other argument
    /// also satisfies, plus equalities `e₁ + λ·e₂ = c` derived from pairs
    /// of equalities of the two sides (the loop-invariant shapes like
    /// `k − 2i = c` that a purely syntactic weak join would lose). Sound
    /// (⊇ convex hull of the union).
    pub fn join(&self, other: &Polyhedron) -> Polyhedron {
        self.join_impl(other, false)
    }

    /// The join used at loop heads: additionally closes the result under
    /// entailed octagonal facts, so derived bounds (like `i ≤ len(a)`)
    /// survive the constraint-dropping widening. More expensive (one LP per
    /// direction per side), so plain control-flow merges use [`Polyhedron::join`].
    pub fn join_hulled(&self, other: &Polyhedron) -> Polyhedron {
        self.join_impl(other, true)
    }

    fn join_impl(&self, other: &Polyhedron, hulled: bool) -> Polyhedron {
        assert_eq!(self.dims, other.dims, "dimension mismatch in join");
        if self.empty {
            return other.clone();
        }
        if other.empty {
            return self.clone();
        }
        let mut out = Vec::new();
        let push = |c: Constraint, out: &mut Vec<Constraint>| {
            let c = c.normalize();
            if !out.contains(&c) {
                out.push(c);
            }
        };
        for c in self.cons.iter().flat_map(|c| c.split()) {
            if other.entails(&c) {
                push(c, &mut out);
            }
        }
        for c in other.cons.iter().flat_map(|c| c.split()) {
            if self.entails(&c) {
                push(c, &mut out);
            }
        }
        // Combination equalities. For e₁ = 0 on self with constant value c
        // on other, and e₂ = 0 on other with constant value d ≠ 0 on self:
        // e₁ + (c/d)·e₂ equals c on both sides, hence on the hull.
        let eqs = |p: &Polyhedron| -> Vec<LinExpr> {
            p.cons
                .iter()
                .filter(|c| c.kind == ConstraintKind::EqZero)
                .map(|c| c.expr.clone())
                .collect()
        };
        let const_value = |p: &Polyhedron, e: &LinExpr| -> Option<Rat> {
            let (lo, hi) = p.bounds(e);
            match (lo, hi) {
                (Some(a), Some(b)) if a == b => Some(a),
                _ => None,
            }
        };
        let mut combos = 0usize;
        'outer: for e1 in eqs(self) {
            let Some(c) = const_value(other, &e1) else { continue };
            if c.is_zero() {
                continue; // already kept by the base join
            }
            for e2 in eqs(other) {
                let Some(d) = const_value(self, &e2) else { continue };
                if d.is_zero() {
                    continue;
                }
                let outer_overflow = crate::rational::take_overflow();
                let lambda = c / d;
                let combined = e1.add(&e2.scale(lambda)).add_constant(-c);
                let combo_overflowed = crate::rational::take_overflow();
                if outer_overflow {
                    crate::rational::set_overflow();
                }
                if combo_overflowed {
                    // Combination equalities only tighten the join; skipping
                    // an overflowed one is sound.
                    blazer_ir::budget::note_overflow();
                    continue;
                }
                push(Constraint::eq_zero(combined), &mut out);
                combos += 1;
                if combos >= 16 {
                    break 'outer; // cap the quadratic pairing
                }
            }
        }
        // Octagonal hull over co-occurring dimensions: for directions
        // `±xᵢ` and `±(xᵢ − xⱼ)`, the max of the two sides' suprema is
        // valid for the hull. This recovers entailed-but-not-syntactic
        // facts like `i ≤ len(a)` that the weak join would lose. Loop
        // heads only (see `join_hulled`).
        if !hulled {
            reconstitute_equalities(&mut out);
            let mut p = Polyhedron { dims: self.dims, cons: out, empty: false };
            if p.cons.len() > 24 {
                p.remove_redundant();
            }
            return p;
        }
        let mut mentioned: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
        let mut pairs: std::collections::BTreeSet<(usize, usize)> =
            std::collections::BTreeSet::new();
        for c in self.cons.iter().chain(other.cons.iter()) {
            let ds: Vec<usize> = c.expr.dims().collect();
            mentioned.extend(ds.iter().copied());
            for (i, &a) in ds.iter().enumerate() {
                for &b in &ds[i + 1..] {
                    pairs.insert((a.min(b), a.max(b)));
                }
            }
        }
        let mut directions: Vec<LinExpr> = Vec::new();
        for &d in &mentioned {
            directions.push(LinExpr::var(d));
            directions.push(LinExpr::var(d).scale(-Rat::ONE));
        }
        for &(a, b) in &pairs {
            let diff = LinExpr::var(a).sub(&LinExpr::var(b));
            directions.push(diff.clone());
            directions.push(diff.scale(-Rat::ONE));
        }
        for e in directions {
            if let (Some(a), Some(b)) = (self.sup(&e), other.sup(&e)) {
                // e ≤ max(a, b) on the hull.
                push(Constraint::ge_zero(LinExpr::constant(a.max(b)).sub(&e)), &mut out);
            }
        }

        reconstitute_equalities(&mut out);
        let mut p = Polyhedron { dims: self.dims, cons: out, empty: false };
        if p.cons.len() > 24 {
            p.remove_redundant();
        }
        p
    }

    /// Standard constraint-dropping widening: keeps the constraints of
    /// `self` (the older iterate) that still hold in `newer`. The older
    /// iterate is first *saturated* with its entailed octagonal facts so
    /// that a stable derived bound (like `i ≥ 0` implied by `i = j ∧
    /// j ≥ 0`) survives even when its syntactic carriers do not.
    ///
    /// Termination: saturation is a function of `self` alone and the result
    /// keeps a subset of the saturated set, so repeated widening stabilizes
    /// (entailed octagonal facts only weaken as iterates grow).
    pub fn widen(&self, newer: &Polyhedron) -> Polyhedron {
        assert_eq!(self.dims, newer.dims, "dimension mismatch in widen");
        if self.empty {
            return newer.clone();
        }
        if newer.empty {
            return self.clone();
        }
        let mut candidates: Vec<Constraint> = self.cons.iter().flat_map(|c| c.split()).collect();
        candidates.extend(self.octagonal_facts());
        let kept: Vec<Constraint> =
            candidates.into_iter().filter(|c| newer.entails(c)).map(|c| c.normalize()).collect();
        let mut dedup = Vec::new();
        for c in kept {
            if !dedup.contains(&c) {
                dedup.push(c);
            }
        }
        reconstitute_equalities(&mut dedup);
        let mut p = Polyhedron { dims: self.dims, cons: dedup, empty: false };
        if p.cons.len() > 24 {
            p.remove_redundant();
        }
        p
    }

    /// Entailed `±xᵢ ≤ c` and `±(xᵢ ± xⱼ) ≤ c` facts over mentioned and
    /// co-occurring dimensions.
    fn octagonal_facts(&self) -> Vec<Constraint> {
        let mut mentioned: BTreeSet<usize> = BTreeSet::new();
        let mut pairs: BTreeSet<(usize, usize)> = BTreeSet::new();
        for c in &self.cons {
            let ds: Vec<usize> = c.expr.dims().collect();
            mentioned.extend(ds.iter().copied());
            for (i, &a) in ds.iter().enumerate() {
                for &b in &ds[i + 1..] {
                    pairs.insert((a.min(b), a.max(b)));
                }
            }
        }
        let mut directions: Vec<LinExpr> = Vec::new();
        for &d in &mentioned {
            directions.push(LinExpr::var(d));
            directions.push(LinExpr::var(d).scale(-Rat::ONE));
        }
        for &(a, b) in &pairs {
            let diff = LinExpr::var(a).sub(&LinExpr::var(b));
            directions.push(diff.clone());
            directions.push(diff.scale(-Rat::ONE));
        }
        let mut out = Vec::new();
        for e in directions {
            if let Some(sup) = self.sup(&e) {
                out.push(Constraint::ge_zero(LinExpr::constant(sup).sub(&e)));
            }
        }
        out
    }

    /// Eliminates dimension `dim` (existential projection). The dimension
    /// stays allocated but unconstrained.
    pub fn project_out(&mut self, dim: usize) {
        if self.empty {
            return;
        }
        // Gaussian step: use an equality mentioning `dim` as a substitution.
        if let Some(pos) = self
            .cons
            .iter()
            .position(|c| c.kind == ConstraintKind::EqZero && !c.expr.coeff(dim).is_zero())
        {
            let snapshot = self.cons.clone();
            let outer_overflow = crate::rational::take_overflow();
            let eq = self.cons.swap_remove(pos);
            let a = eq.expr.coeff(dim);
            // a·dim + rest = 0  ⇒  dim = −rest/a.
            let mut rest = eq.expr.clone();
            rest.set_coeff(dim, Rat::ZERO);
            let replacement = rest.scale(-a.recip());
            let old: Vec<Constraint> = std::mem::take(&mut self.cons);
            for c in old {
                let expr = c.expr.substitute(dim, &replacement);
                self.cons.push(Constraint { expr, kind: c.kind });
            }
            if crate::rational::take_overflow() {
                // The substituted system is garbage; fall back to the
                // coarsest sound projection — drop every constraint that
                // mentions `dim`.
                blazer_ir::budget::note_overflow();
                blazer_ir::budget::note_degradation(
                    "polyhedra: projection substitution overflowed; dropping constraints on dim",
                );
                self.cons = snapshot;
                self.cons.retain(|c| c.expr.coeff(dim).is_zero());
            }
            if outer_overflow {
                crate::rational::set_overflow();
            }
            self.retain_nontrivial();
            return;
        }
        // Fourier–Motzkin on inequalities (equalities without `dim` are kept).
        let mut lowers = Vec::new(); // coeff on dim > 0
        let mut uppers = Vec::new(); // coeff on dim < 0
        let mut rest = Vec::new();
        for c in std::mem::take(&mut self.cons) {
            let a = c.expr.coeff(dim);
            if a.is_zero() {
                rest.push(c);
            } else if a.is_positive() {
                lowers.push(c);
            } else {
                uppers.push(c);
            }
        }
        // Derived constraints are optional: each one only tightens the
        // projection, so skipping a pair — because its combination
        // overflowed or because the budget ran out mid-sweep — stays sound.
        let outer_overflow = crate::rational::take_overflow();
        let mut budget_truncated = false;
        'pairs: for lo in &lowers {
            for hi in &uppers {
                if blazer_ir::budget::check().is_err() {
                    budget_truncated = true;
                    break 'pairs;
                }
                let a = lo.expr.coeff(dim); // > 0
                let b = hi.expr.coeff(dim); // < 0
                                            // a·lo_rest scaling: combine lo·(−b) + hi·a, dim cancels.
                let combined = lo.expr.scale(-b).add(&hi.expr.scale(a));
                if crate::rational::take_overflow() {
                    blazer_ir::budget::note_overflow();
                    blazer_ir::budget::note_degradation(
                        "polyhedra: Fourier–Motzkin pair skipped after overflow",
                    );
                    continue;
                }
                debug_assert!(combined.coeff(dim).is_zero());
                rest.push(Constraint::ge_zero(combined));
            }
        }
        if budget_truncated {
            blazer_ir::budget::note_degradation(
                "polyhedra: Fourier–Motzkin sweep truncated by exhausted budget",
            );
        }
        if outer_overflow {
            crate::rational::set_overflow();
        }
        self.cons = rest;
        self.retain_nontrivial();
        if self.cons.len() > REDUNDANCY_LIMIT {
            self.remove_redundant();
        }
    }

    /// Keeps only the dimensions in `keep` constrained, eliminating all
    /// others. Used to express invariants over input seeds.
    pub fn project_onto(&self, keep: &BTreeSet<usize>) -> Polyhedron {
        let mut p = self.clone();
        let mentioned: BTreeSet<usize> =
            p.cons.iter().flat_map(|c| c.expr.dims().collect::<Vec<_>>()).collect();
        for d in mentioned {
            if !keep.contains(&d) {
                p.project_out(d);
            }
        }
        p
    }

    /// Forward assignment `dim := e` (e may mention `dim`).
    pub fn assign(&mut self, dim: usize, e: &LinExpr) {
        if self.empty {
            return;
        }
        let a = e.coeff(dim);
        if !a.is_zero() {
            // Invertible update: old = (new − rest)/a; substitute in place.
            let snapshot = self.cons.clone();
            let outer_overflow = crate::rational::take_overflow();
            let mut rest = e.clone();
            rest.set_coeff(dim, Rat::ZERO);
            // new = a·old + rest  ⇒  old = (new − rest)/a.
            let inverse = LinExpr::var(dim).sub(&rest).scale(a.recip());
            let old: Vec<Constraint> = std::mem::take(&mut self.cons);
            for c in old {
                let expr = c.expr.substitute(dim, &inverse);
                self.cons.push(Constraint { expr, kind: c.kind });
            }
            if crate::rational::take_overflow() {
                // The substituted system is garbage; the sound fallback for
                // an assignment is to forget the assigned dimension.
                blazer_ir::budget::note_overflow();
                blazer_ir::budget::note_degradation(
                    "polyhedra: assignment substitution overflowed; havocking dim",
                );
                self.cons = snapshot;
                if outer_overflow {
                    crate::rational::set_overflow();
                }
                self.project_out(dim);
                return;
            }
            if outer_overflow {
                crate::rational::set_overflow();
            }
            self.retain_nontrivial();
        } else {
            self.project_out(dim);
            if !self.empty {
                self.add_constraint(Constraint::eq(&LinExpr::var(dim), e));
            }
        }
    }

    /// Forgets everything about `dim`.
    pub fn havoc(&mut self, dim: usize) {
        self.project_out(dim);
    }

    /// Truncating division `dim := src / divisor` (positive constant
    /// divisor). Precise when the polyhedron entails `src ≥ 0`:
    /// `divisor·dim ≤ src ≤ divisor·dim + divisor − 1 ∧ dim ≥ 0`. Sound
    /// fallback is to forget `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is not strictly positive.
    pub fn assign_div(&mut self, dim: usize, src: &LinExpr, divisor: Rat) {
        assert!(divisor.is_positive(), "divisor must be positive");
        if self.empty {
            return;
        }
        if !self.entails(&Constraint::ge_zero(src.clone())) {
            self.project_out(dim);
            return;
        }
        // Fresh temp dimension beyond any mentioned index.
        let t = self
            .cons
            .iter()
            .flat_map(|c| c.expr.dims().collect::<Vec<_>>())
            .chain(src.dims())
            .max()
            .map_or(self.dims, |d| d + 1)
            .max(self.dims);
        let tv = LinExpr::var(t);
        // divisor·t ≤ src ∧ src ≤ divisor·t + divisor − 1 ∧ t ≥ 0.
        self.add_constraint(Constraint::le(&tv.scale(divisor), src));
        self.add_constraint(Constraint::le(
            src,
            &tv.scale(divisor).add_constant(divisor - Rat::ONE),
        ));
        self.add_constraint(Constraint::ge(&tv, &LinExpr::zero()));
        self.project_out(dim);
        if self.empty {
            return;
        }
        let renamed = self.rename_dims(self.dims, |d| if d == t { dim } else { d });
        *self = renamed;
    }

    /// The infimum and supremum of `e` over the polyhedron (`None` =
    /// unbounded in that direction). Returns `(Some(1), Some(0))`-style
    /// nonsense never: on an empty polyhedron returns `(None, None)`.
    pub fn bounds(&self, e: &LinExpr) -> (Option<Rat>, Option<Rat>) {
        if self.empty {
            return (None, None);
        }
        let lo = Simplex::minimize(e, &self.cons).optimal();
        let hi = Simplex::maximize(e, &self.cons).optimal();
        (lo, hi)
    }

    /// The supremum of `e` only (half the LP work of [`Polyhedron::bounds`]).
    pub fn sup(&self, e: &LinExpr) -> Option<Rat> {
        if self.empty {
            return None;
        }
        Simplex::maximize(e, &self.cons).optimal()
    }

    /// Whether the concrete point (indexed by dimension) lies inside.
    pub fn contains_point(&self, point: &[Rat]) -> bool {
        if self.empty {
            return false;
        }
        self.cons.iter().all(|c| c.satisfied_by(|d| point.get(d).copied().unwrap_or(Rat::ZERO)))
    }

    /// Renames dimensions via `f` (must be injective over mentioned dims);
    /// adjusts the dimension count to `new_dims`.
    pub fn rename_dims(&self, new_dims: usize, mut f: impl FnMut(usize) -> usize) -> Polyhedron {
        if self.empty {
            return Polyhedron::bottom(new_dims);
        }
        let cons = self
            .cons
            .iter()
            .map(|c| Constraint { expr: c.expr.rename(&mut f), kind: c.kind })
            .collect();
        Polyhedron { dims: new_dims, cons, empty: false }
    }

    fn retain_nontrivial(&mut self) {
        let mut infeasible = false;
        self.cons.retain(|c| match c.is_trivial() {
            Some(true) => false,
            Some(false) => {
                infeasible = true;
                false
            }
            None => true,
        });
        if infeasible || !Simplex::feasible(&self.cons) {
            self.empty = true;
            self.cons.clear();
        }
    }

    /// Removes constraints entailed by the others (LP-based).
    pub fn remove_redundant(&mut self) {
        if self.empty {
            return;
        }
        let mut i = 0;
        while i < self.cons.len() {
            let candidate = self.cons[i].clone();
            let rest: Vec<Constraint> = self
                .cons
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, c)| c.clone())
                .collect();
            let tmp = Polyhedron { dims: self.dims, cons: rest, empty: false };
            if tmp.entails(&candidate) {
                self.cons.remove(i);
            } else {
                i += 1;
            }
        }
    }
}

/// Merges complementary inequality pairs `e ≥ 0` and `−e ≥ 0` back into a
/// single equality `e = 0`, so later joins can find equality pairs for the
/// affine-combination inference.
fn reconstitute_equalities(cons: &mut Vec<Constraint>) {
    let mut i = 0;
    while i < cons.len() {
        if cons[i].kind != ConstraintKind::GeZero {
            i += 1;
            continue;
        }
        let negated = Constraint::ge_zero(cons[i].expr.scale(-Rat::ONE)).normalize();
        if let Some(j) = cons
            .iter()
            .enumerate()
            .position(|(k, c)| k != i && c.kind == ConstraintKind::GeZero && *c == negated)
        {
            let expr = cons[i].expr.clone();
            let hi = i.max(j);
            let lo = i.min(j);
            cons.remove(hi);
            cons[lo] = Constraint::eq_zero(expr).normalize();
            // Re-examine from the changed position.
            i = lo + 1;
        } else {
            i += 1;
        }
    }
}

impl PartialEq for Polyhedron {
    /// Semantic equality (mutual inclusion).
    fn eq(&self, other: &Self) -> bool {
        self.includes(other) && other.includes(self)
    }
}

impl fmt::Display for Polyhedron {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.empty {
            return f.write_str("⊥");
        }
        if self.cons.is_empty() {
            return f.write_str("⊤");
        }
        for (i, c) in self.cons.iter().enumerate() {
            if i > 0 {
                f.write_str(" ∧ ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128) -> Rat {
        Rat::int(n)
    }

    fn x() -> LinExpr {
        LinExpr::var(0)
    }

    fn y() -> LinExpr {
        LinExpr::var(1)
    }

    /// lo ≤ var ≤ hi as a two-constraint polyhedron.
    fn boxed(dims: usize, dim: usize, lo: i128, hi: i128) -> Polyhedron {
        let v = LinExpr::var(dim);
        Polyhedron::from_constraints(
            dims,
            vec![
                Constraint::ge(&v, &LinExpr::constant(r(lo))),
                Constraint::le(&v, &LinExpr::constant(r(hi))),
            ],
        )
    }

    #[test]
    fn top_and_bottom() {
        let t = Polyhedron::top(2);
        let b = Polyhedron::bottom(2);
        assert!(t.is_top() && !t.is_empty());
        assert!(b.is_empty() && !b.is_top());
        assert!(t.includes(&b));
        assert!(!b.includes(&t));
        assert!(t.includes(&t));
    }

    #[test]
    fn infeasible_meet_becomes_bottom() {
        let mut p = boxed(1, 0, 0, 5);
        p.add_constraint(Constraint::ge(&x(), &LinExpr::constant(r(10))));
        assert!(p.is_empty());
    }

    #[test]
    fn entailment() {
        let p = boxed(1, 0, 2, 5);
        assert!(p.entails(&Constraint::ge(&x(), &LinExpr::constant(r(0)))));
        assert!(p.entails(&Constraint::le(&x(), &LinExpr::constant(r(5)))));
        assert!(!p.entails(&Constraint::ge(&x(), &LinExpr::constant(r(3)))));
        // Equality entailment needs both directions.
        let mut point = Polyhedron::top(1);
        point.add_constraint(Constraint::eq(&x(), &LinExpr::constant(r(4))));
        assert!(point.entails(&Constraint::eq(&x(), &LinExpr::constant(r(4)))));
        assert!(!p.entails(&Constraint::eq(&x(), &LinExpr::constant(r(4)))));
    }

    #[test]
    fn join_of_points_is_segment() {
        let mut p0 = Polyhedron::top(1);
        p0.add_constraint(Constraint::eq(&x(), &LinExpr::constant(r(0))));
        let mut p1 = Polyhedron::top(1);
        p1.add_constraint(Constraint::eq(&x(), &LinExpr::constant(r(1))));
        let j = p0.join(&p1);
        assert!(j.entails(&Constraint::ge(&x(), &LinExpr::constant(r(0)))));
        assert!(j.entails(&Constraint::le(&x(), &LinExpr::constant(r(1)))));
        assert!(j.includes(&p0) && j.includes(&p1));
        assert_eq!(j.bounds(&x()), (Some(r(0)), Some(r(1))));
    }

    #[test]
    fn join_preserves_relational_facts() {
        // P0: i = 0 ∧ n ≥ 0; P1: i = n ∧ n ≥ 0. Join keeps 0 ≤ i ≤ n.
        let n_ge0 = Constraint::ge(&y(), &LinExpr::constant(r(0)));
        let mut p0 = Polyhedron::top(2);
        p0.add_constraint(Constraint::eq(&x(), &LinExpr::constant(r(0))));
        p0.add_constraint(n_ge0.clone());
        let mut p1 = Polyhedron::top(2);
        p1.add_constraint(Constraint::eq(&x(), &y()));
        p1.add_constraint(n_ge0);
        let j = p0.join(&p1);
        assert!(j.entails(&Constraint::ge(&x(), &LinExpr::constant(r(0)))));
        assert!(j.entails(&Constraint::le(&x(), &y())));
    }

    #[test]
    fn join_with_bottom_is_identity() {
        let p = boxed(1, 0, 1, 3);
        let b = Polyhedron::bottom(1);
        assert_eq!(p.join(&b), p);
        assert_eq!(b.join(&p), p);
    }

    #[test]
    fn widening_drops_unstable_bounds() {
        // Old: 0 ≤ x ≤ 1; New: 0 ≤ x ≤ 2. Widening keeps x ≥ 0, drops x ≤ 1.
        let old = boxed(1, 0, 0, 1);
        let new = boxed(1, 0, 0, 2);
        let w = old.widen(&new);
        assert!(w.entails(&Constraint::ge(&x(), &LinExpr::constant(r(0)))));
        assert!(!w.entails(&Constraint::le(&x(), &LinExpr::constant(r(100)))));
        // Widening is idempotent once stable.
        let w2 = w.widen(&new.join(&w));
        assert!(w2.includes(&w) && w.includes(&w2));
    }

    #[test]
    fn projection_fm() {
        // x ≤ y ∧ y ≤ 5: eliminating y leaves x ≤ 5.
        let mut p = Polyhedron::top(2);
        p.add_constraint(Constraint::le(&x(), &y()));
        p.add_constraint(Constraint::le(&y(), &LinExpr::constant(r(5))));
        p.project_out(1);
        assert!(p.entails(&Constraint::le(&x(), &LinExpr::constant(r(5)))));
        // y is unconstrained now.
        assert_eq!(p.bounds(&y()), (None, None));
    }

    #[test]
    fn projection_gaussian() {
        // y = x + 1 ∧ y ≤ 10: eliminating y leaves x ≤ 9.
        let mut p = Polyhedron::top(2);
        p.add_constraint(Constraint::eq(&y(), &x().add_constant(r(1))));
        p.add_constraint(Constraint::le(&y(), &LinExpr::constant(r(10))));
        p.project_out(1);
        assert!(p.entails(&Constraint::le(&x(), &LinExpr::constant(r(9)))));
    }

    #[test]
    fn assign_invertible() {
        // x ∈ [0, 5]; x := x + 1 ⇒ x ∈ [1, 6].
        let mut p = boxed(1, 0, 0, 5);
        p.assign(0, &x().add_constant(r(1)));
        assert_eq!(p.bounds(&x()), (Some(r(1)), Some(r(6))));
    }

    #[test]
    fn assign_non_invertible() {
        // x ∈ [0, 5], y ∈ [2, 3]; x := y ⇒ x ∈ [2, 3].
        let mut p = boxed(2, 0, 0, 5);
        p.meet(&boxed(2, 1, 2, 3));
        p.assign(0, &y());
        assert_eq!(p.bounds(&x()), (Some(r(2)), Some(r(3))));
        // And x = y holds.
        assert!(p.entails(&Constraint::eq(&x(), &y())));
    }

    #[test]
    fn assign_constant() {
        let mut p = boxed(1, 0, 0, 5);
        p.assign(0, &LinExpr::constant(r(42)));
        assert_eq!(p.bounds(&x()), (Some(r(42)), Some(r(42))));
    }

    #[test]
    fn havoc_forgets() {
        let mut p = boxed(2, 0, 0, 5);
        p.meet(&boxed(2, 1, 1, 1));
        p.havoc(0);
        assert_eq!(p.bounds(&x()), (None, None));
        assert_eq!(p.bounds(&y()), (Some(r(1)), Some(r(1))));
    }

    #[test]
    fn project_onto_keeps_seed_relation() {
        // i = n ∧ n ≤ m (dims: i=0, n=1, m=2). Projecting onto {1, 2}
        // keeps n ≤ m.
        let mut p = Polyhedron::top(3);
        p.add_constraint(Constraint::eq(&x(), &y()));
        p.add_constraint(Constraint::le(&y(), &LinExpr::var(2)));
        let q = p.project_onto(&BTreeSet::from([1, 2]));
        assert!(q.entails(&Constraint::le(&y(), &LinExpr::var(2))));
    }

    #[test]
    fn contains_point() {
        let p = boxed(2, 0, 0, 5);
        assert!(p.contains_point(&[r(3), r(100)]));
        assert!(!p.contains_point(&[r(6), r(0)]));
        assert!(!Polyhedron::bottom(2).contains_point(&[r(0), r(0)]));
    }

    #[test]
    fn rename_dims() {
        let p = boxed(1, 0, 2, 4);
        let q = p.rename_dims(3, |d| d + 2);
        assert_eq!(q.bounds(&LinExpr::var(2)), (Some(r(2)), Some(r(4))));
    }

    #[test]
    fn redundancy_removal() {
        let mut p = Polyhedron::top(1);
        p.add_constraint(Constraint::le(&x(), &LinExpr::constant(r(5))));
        p.add_constraint(Constraint::le(&x(), &LinExpr::constant(r(10))));
        p.remove_redundant();
        assert_eq!(p.constraints().len(), 1);
        assert!(p.entails(&Constraint::le(&x(), &LinExpr::constant(r(5)))));
    }

    #[test]
    fn semantic_equality() {
        // x ≥ 0 ∧ x ≥ 1 equals x ≥ 1.
        let mut a = Polyhedron::top(1);
        a.add_constraint(Constraint::ge(&x(), &LinExpr::constant(r(0))));
        a.add_constraint(Constraint::ge(&x(), &LinExpr::constant(r(1))));
        let mut b = Polyhedron::top(1);
        b.add_constraint(Constraint::ge(&x(), &LinExpr::constant(r(1))));
        assert_eq!(a, b);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn rand_box(dims: usize) -> impl Strategy<Value = Polyhedron> {
            proptest::collection::vec((-20i128..20, 0i128..20), dims).prop_map(move |ranges| {
                let mut p = Polyhedron::top(dims);
                for (d, (lo, w)) in ranges.into_iter().enumerate() {
                    let v = LinExpr::var(d);
                    p.add_constraint(Constraint::ge(&v, &LinExpr::constant(Rat::int(lo))));
                    p.add_constraint(Constraint::le(&v, &LinExpr::constant(Rat::int(lo + w))));
                }
                p
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// Join over-approximates both arguments.
            #[test]
            fn join_is_upper_bound(a in rand_box(2), b in rand_box(2)) {
                let j = a.join(&b);
                prop_assert!(j.includes(&a));
                prop_assert!(j.includes(&b));
            }

            /// Meet under-approximates both arguments.
            #[test]
            fn meet_is_lower_bound(a in rand_box(2), b in rand_box(2)) {
                let mut m = a.clone();
                m.meet(&b);
                prop_assert!(a.includes(&m));
                prop_assert!(b.includes(&m));
            }

            /// Widening over-approximates the join.
            #[test]
            fn widen_over_join(a in rand_box(2), b in rand_box(2)) {
                let j = a.join(&b);
                let w = a.widen(&j);
                prop_assert!(w.includes(&j));
                prop_assert!(w.includes(&a));
            }

            /// γ soundness: points inside both stay inside meet; points in
            /// either stay inside join.
            #[test]
            fn point_soundness(a in rand_box(2), b in rand_box(2), px in -25i128..25, py in -25i128..25) {
                let pt = [Rat::int(px), Rat::int(py)];
                let mut m = a.clone();
                m.meet(&b);
                if a.contains_point(&pt) && b.contains_point(&pt) {
                    prop_assert!(m.contains_point(&pt));
                }
                let j = a.join(&b);
                if a.contains_point(&pt) || b.contains_point(&pt) {
                    prop_assert!(j.contains_point(&pt));
                }
            }

            /// Assignment soundness on boxes: concretely updating a point
            /// inside stays inside the abstract result.
            #[test]
            fn assign_soundness(a in rand_box(2), px in -25i128..25, py in -25i128..25, c in -5i128..5) {
                let pt = [Rat::int(px), Rat::int(py)];
                if a.contains_point(&pt) {
                    // x := x + y + c
                    let e = LinExpr::var(0).add(&LinExpr::var(1)).add_constant(Rat::int(c));
                    let mut p = a.clone();
                    p.assign(0, &e);
                    let new_pt = [Rat::int(px + py + c), Rat::int(py)];
                    prop_assert!(p.contains_point(&new_pt));
                }
            }

            /// Projection soundness: a point inside stays inside after
            /// forgetting one coordinate (any value of that coordinate).
            #[test]
            fn projection_soundness(a in rand_box(2), px in -25i128..25, py in -25i128..25, other in -25i128..25) {
                let pt = [Rat::int(px), Rat::int(py)];
                if a.contains_point(&pt) {
                    let mut p = a.clone();
                    p.project_out(0);
                    prop_assert!(p.contains_point(&[Rat::int(other), Rat::int(py)]));
                }
            }
        }
    }
}
