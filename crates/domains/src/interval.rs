//! The interval domain (per-dimension ranges).

use crate::domain::AbstractDomain;
use crate::linexpr::{Constraint, ConstraintKind, LinExpr};
use crate::polyhedra::Polyhedron;
use crate::rational::Rat;
use std::fmt;

/// A single interval `[lo, hi]`; `None` means unbounded on that side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Lower bound (inclusive); `None` = −∞.
    pub lo: Option<Rat>,
    /// Upper bound (inclusive); `None` = +∞.
    pub hi: Option<Rat>,
}

impl Interval {
    /// The full line.
    pub fn top() -> Self {
        Interval { lo: None, hi: None }
    }

    /// A singleton point.
    pub fn point(v: Rat) -> Self {
        Interval { lo: Some(v), hi: Some(v) }
    }

    /// `[lo, hi]` with both ends finite.
    pub fn closed(lo: Rat, hi: Rat) -> Self {
        Interval { lo: Some(lo), hi: Some(hi) }
    }

    /// Whether the interval is empty (`lo > hi`).
    pub fn is_empty(&self) -> bool {
        matches!((self.lo, self.hi), (Some(l), Some(h)) if l > h)
    }

    /// Union hull.
    pub fn join(&self, other: &Interval) -> Interval {
        Interval {
            lo: match (self.lo, other.lo) {
                (Some(a), Some(b)) => Some(a.min(b)),
                _ => None,
            },
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            },
        }
    }

    /// Intersection.
    pub fn meet(&self, other: &Interval) -> Interval {
        Interval {
            lo: match (self.lo, other.lo) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            },
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
        }
    }

    /// Interval widening: unstable bounds jump to infinity.
    pub fn widen(&self, newer: &Interval) -> Interval {
        Interval {
            lo: match (self.lo, newer.lo) {
                (Some(a), Some(b)) if b >= a => Some(a),
                _ => None,
            },
            hi: match (self.hi, newer.hi) {
                (Some(a), Some(b)) if b <= a => Some(a),
                _ => None,
            },
        }
    }

    /// Whether `self ⊇ other`.
    pub fn includes(&self, other: &Interval) -> bool {
        if other.is_empty() {
            return true;
        }
        let lo_ok = match (self.lo, other.lo) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(a), Some(b)) => a <= b,
        };
        let hi_ok = match (self.hi, other.hi) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(a), Some(b)) => a >= b,
        };
        lo_ok && hi_ok
    }

    /// Whether `v ∈ self`.
    pub fn contains(&self, v: Rat) -> bool {
        self.lo.is_none_or(|l| l <= v) && self.hi.is_none_or(|h| h >= v)
    }

    /// Interval sum.
    pub fn add(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.zip(other.lo).map(|(a, b)| a + b),
            hi: self.hi.zip(other.hi).map(|(a, b)| a + b),
        }
    }

    /// Scaling by a constant (flips ends for negative factors).
    pub fn scale(&self, k: Rat) -> Interval {
        if k.is_zero() {
            return Interval::point(Rat::ZERO);
        }
        if k.is_positive() {
            Interval { lo: self.lo.map(|v| v * k), hi: self.hi.map(|v| v * k) }
        } else {
            Interval { lo: self.hi.map(|v| v * k), hi: self.lo.map(|v| v * k) }
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.lo {
            Some(l) => write!(f, "[{l}, ")?,
            None => f.write_str("(-inf, ")?,
        }
        match self.hi {
            Some(h) => write!(f, "{h}]"),
            None => f.write_str("+inf)"),
        }
    }
}

/// The interval abstract domain: one [`Interval`] per dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalVec {
    ivs: Vec<Interval>,
    bottom: bool,
}

impl IntervalVec {
    /// Evaluates a linear expression to an interval.
    pub fn eval(&self, e: &LinExpr) -> Interval {
        let mut acc = Interval::point(e.constant_part());
        for (d, c) in e.terms() {
            acc = acc.add(&self.ivs[d].scale(c));
        }
        acc
    }

    /// The interval of one dimension.
    pub fn get(&self, dim: usize) -> Interval {
        self.ivs[dim]
    }

    fn set(&mut self, dim: usize, iv: Interval) {
        if iv.is_empty() {
            self.bottom = true;
        } else {
            self.ivs[dim] = iv;
        }
    }

    /// One pass of interval constraint propagation for `c`.
    fn propagate(&mut self, c: &Constraint) {
        if self.bottom {
            return;
        }
        // For Σ aᵢxᵢ + k ≥ 0: xᵢ ≥ (−k − Σ_{j≠i} sup(aⱼxⱼ)) / aᵢ for aᵢ > 0,
        // and the mirrored upper bound for aᵢ < 0.
        let terms: Vec<(usize, Rat)> = c.expr.terms().collect();
        for &(d, a) in &terms {
            // rest = expr − a·x_d; bounds of rest without x_d.
            let mut rest = c.expr.clone();
            rest.set_coeff(d, Rat::ZERO);
            let rest_iv = self.eval(&rest);
            // a·x_d + rest ≥ 0  ⇒  a·x_d ≥ −rest ⇒ use sup(rest).
            match rest_iv.hi {
                Some(rest_hi) => {
                    // a·x_d ≥ −rest_hi
                    let bound = -rest_hi / a;
                    let iv = if a.is_positive() {
                        Interval { lo: Some(bound), hi: None }
                    } else {
                        Interval { lo: None, hi: Some(bound) }
                    };
                    let met = self.ivs[d].meet(&iv);
                    self.set(d, met);
                    if self.bottom {
                        return;
                    }
                }
                None => continue,
            }
        }
        if c.kind == ConstraintKind::EqZero {
            // Also propagate the mirrored inequality.
            let neg = Constraint::ge_zero(c.expr.scale(-Rat::ONE));
            let terms: Vec<(usize, Rat)> = neg.expr.terms().collect();
            for &(d, a) in &terms {
                let mut rest = neg.expr.clone();
                rest.set_coeff(d, Rat::ZERO);
                let rest_iv = self.eval(&rest);
                if let Some(rest_hi) = rest_iv.hi {
                    let bound = -rest_hi / a;
                    let iv = if a.is_positive() {
                        Interval { lo: Some(bound), hi: None }
                    } else {
                        Interval { lo: None, hi: Some(bound) }
                    };
                    let met = self.ivs[d].meet(&iv);
                    self.set(d, met);
                    if self.bottom {
                        return;
                    }
                }
            }
        }
        // Definite infeasibility check on constant residue.
        let iv = self.eval(&c.expr);
        let violated = match c.kind {
            ConstraintKind::GeZero => iv.hi.is_some_and(|h| h < Rat::ZERO),
            ConstraintKind::EqZero => {
                iv.hi.is_some_and(|h| h < Rat::ZERO) || iv.lo.is_some_and(|l| l > Rat::ZERO)
            }
        };
        if violated {
            self.bottom = true;
        }
    }
}

impl AbstractDomain for IntervalVec {
    fn top(dims: usize) -> Self {
        IntervalVec { ivs: vec![Interval::top(); dims], bottom: false }
    }

    fn bottom(dims: usize) -> Self {
        IntervalVec { ivs: vec![Interval::top(); dims], bottom: true }
    }

    fn dims(&self) -> usize {
        self.ivs.len()
    }

    fn is_bottom(&self) -> bool {
        self.bottom
    }

    fn join(&self, other: &Self) -> Self {
        if self.bottom {
            return other.clone();
        }
        if other.bottom {
            return self.clone();
        }
        IntervalVec {
            ivs: self.ivs.iter().zip(&other.ivs).map(|(a, b)| a.join(b)).collect(),
            bottom: false,
        }
    }

    fn widen(&self, newer: &Self) -> Self {
        if self.bottom {
            return newer.clone();
        }
        if newer.bottom {
            return self.clone();
        }
        IntervalVec {
            ivs: self.ivs.iter().zip(&newer.ivs).map(|(a, b)| a.widen(b)).collect(),
            bottom: false,
        }
    }

    fn includes(&self, other: &Self) -> bool {
        if other.bottom {
            return true;
        }
        if self.bottom {
            return false;
        }
        self.ivs.iter().zip(&other.ivs).all(|(a, b)| a.includes(b))
    }

    fn meet_constraint(&mut self, c: &Constraint) {
        self.propagate(c);
    }

    fn assign_linear(&mut self, dim: usize, e: &LinExpr) {
        if self.bottom {
            return;
        }
        let iv = self.eval(e);
        self.set(dim, iv);
    }

    fn havoc(&mut self, dim: usize) {
        if !self.bottom {
            self.ivs[dim] = Interval::top();
        }
    }

    fn bounds(&self, e: &LinExpr) -> (Option<Rat>, Option<Rat>) {
        if self.bottom {
            return (None, None);
        }
        let iv = self.eval(e);
        (iv.lo, iv.hi)
    }

    fn to_polyhedron(&self) -> Polyhedron {
        if self.bottom {
            return Polyhedron::bottom(self.ivs.len());
        }
        let mut p = Polyhedron::top(self.ivs.len());
        for (d, iv) in self.ivs.iter().enumerate() {
            if let Some(l) = iv.lo {
                p.add_constraint(Constraint::ge(&LinExpr::var(d), &LinExpr::constant(l)));
            }
            if let Some(h) = iv.hi {
                p.add_constraint(Constraint::le(&LinExpr::var(d), &LinExpr::constant(h)));
            }
        }
        p
    }

    fn contains_point(&self, point: &[Rat]) -> bool {
        if self.bottom {
            return false;
        }
        self.ivs
            .iter()
            .enumerate()
            .all(|(d, iv)| iv.contains(point.get(d).copied().unwrap_or(Rat::ZERO)))
    }
}

impl fmt::Display for IntervalVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bottom {
            return f.write_str("⊥");
        }
        for (d, iv) in self.ivs.iter().enumerate() {
            if d > 0 {
                f.write_str(", ")?;
            }
            write!(f, "x{d} ∈ {iv}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128) -> Rat {
        Rat::int(n)
    }

    #[test]
    fn interval_lattice_ops() {
        let a = Interval::closed(r(0), r(5));
        let b = Interval::closed(r(3), r(9));
        assert_eq!(a.join(&b), Interval::closed(r(0), r(9)));
        assert_eq!(a.meet(&b), Interval::closed(r(3), r(5)));
        assert!(a.join(&b).includes(&a));
        assert!(a.includes(&a.meet(&b)));
        assert!(Interval::closed(r(5), r(3)).is_empty());
    }

    #[test]
    fn interval_widening_blows_unstable_side() {
        let a = Interval::closed(r(0), r(1));
        let b = Interval::closed(r(0), r(2));
        let w = a.widen(&b);
        assert_eq!(w, Interval { lo: Some(r(0)), hi: None });
        // Stable side is kept.
        assert_eq!(a.widen(&a), a);
    }

    #[test]
    fn constraint_propagation() {
        // x0 − 3 ≥ 0 refines lo to 3.
        let mut d = IntervalVec::top(2);
        d.meet_constraint(&Constraint::ge(&LinExpr::var(0), &LinExpr::constant(r(3))));
        assert_eq!(d.get(0), Interval { lo: Some(r(3)), hi: None });
        // x0 ≤ x1 with x1 ≤ 10 gives x0 ≤ 10.
        d.meet_constraint(&Constraint::le(&LinExpr::var(1), &LinExpr::constant(r(10))));
        d.meet_constraint(&Constraint::le(&LinExpr::var(0), &LinExpr::var(1)));
        assert_eq!(d.get(0), Interval::closed(r(3), r(10)));
    }

    #[test]
    fn infeasible_becomes_bottom() {
        let mut d = IntervalVec::top(1);
        d.meet_constraint(&Constraint::ge(&LinExpr::var(0), &LinExpr::constant(r(5))));
        d.meet_constraint(&Constraint::le(&LinExpr::var(0), &LinExpr::constant(r(2))));
        assert!(d.is_bottom());
    }

    #[test]
    fn equality_propagates_both_sides() {
        let mut d = IntervalVec::top(1);
        d.meet_constraint(&Constraint::eq(&LinExpr::var(0), &LinExpr::constant(r(7))));
        assert_eq!(d.get(0), Interval::point(r(7)));
    }

    #[test]
    fn assignment_and_eval() {
        let mut d = IntervalVec::top(2);
        d.meet_constraint(&Constraint::ge(&LinExpr::var(0), &LinExpr::constant(r(1))));
        d.meet_constraint(&Constraint::le(&LinExpr::var(0), &LinExpr::constant(r(2))));
        // x1 := 3·x0 + 1 ∈ [4, 7].
        d.assign_linear(1, &LinExpr::var(0).scale(r(3)).add_constant(r(1)));
        assert_eq!(d.get(1), Interval::closed(r(4), r(7)));
        let (lo, hi) = d.bounds(&LinExpr::var(1).sub(&LinExpr::var(0)));
        assert_eq!(lo, Some(r(2)));
        assert_eq!(hi, Some(r(6)));
    }

    #[test]
    fn to_polyhedron_round_trip() {
        let mut d = IntervalVec::top(1);
        d.meet_constraint(&Constraint::ge(&LinExpr::var(0), &LinExpr::constant(r(0))));
        d.meet_constraint(&Constraint::le(&LinExpr::var(0), &LinExpr::constant(r(4))));
        let p = d.to_polyhedron();
        assert_eq!(p.bounds(&LinExpr::var(0)), (Some(r(0)), Some(r(4))));
    }

    #[test]
    fn havoc_and_membership() {
        let mut d = IntervalVec::top(1);
        d.meet_constraint(&Constraint::eq(&LinExpr::var(0), &LinExpr::constant(r(2))));
        assert!(d.contains_point(&[r(2)]));
        assert!(!d.contains_point(&[r(3)]));
        d.havoc(0);
        assert!(d.contains_point(&[r(99)]));
    }
}
