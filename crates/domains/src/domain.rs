//! The [`AbstractDomain`] trait implemented by all numeric domains.

use crate::linexpr::{Constraint, LinExpr};
use crate::polyhedra::Polyhedron;
use crate::rational::Rat;

/// A numeric abstract domain over a fixed number of dimensions.
///
/// The abstract interpreter in `blazer-absint` is generic over this trait so
/// the precision/efficiency trade-off (intervals vs. octagons vs. polyhedra)
/// can be measured by the domain-ablation benchmark.
///
/// All operations must be *sound*: transfer functions over-approximate the
/// concrete semantics, `join` over-approximates union, `widen`
/// over-approximates `join` and guarantees termination of increasing chains.
pub trait AbstractDomain: Clone + std::fmt::Debug {
    /// The no-information element over `dims` dimensions.
    fn top(dims: usize) -> Self;

    /// The unreachable element over `dims` dimensions.
    fn bottom(dims: usize) -> Self;

    /// The number of dimensions.
    fn dims(&self) -> usize;

    /// Whether this is (semantically) the empty element.
    fn is_bottom(&self) -> bool;

    /// Least-upper-bound approximation.
    fn join(&self, other: &Self) -> Self;

    /// The join used at widening points (loop heads). Domains may use a
    /// more expensive, more precise join here; the default is [`AbstractDomain::join`].
    fn join_widen_point(&self, other: &Self) -> Self {
        self.join(other)
    }

    /// Widening of `self` (older iterate) with `newer`. Must satisfy
    /// `widen(a, b) ⊇ a ∪ b` and stabilize any increasing chain.
    fn widen(&self, newer: &Self) -> Self;

    /// Whether `self ⊇ other` (order test for fixpoint detection).
    fn includes(&self, other: &Self) -> bool;

    /// Conjoins a linear constraint (soundly: the domain may keep only the
    /// consequences it can represent).
    fn meet_constraint(&mut self, c: &Constraint);

    /// Forward assignment `dim := e` for a linear `e` (which may mention
    /// `dim` itself).
    fn assign_linear(&mut self, dim: usize, e: &LinExpr);

    /// Forgets all information about `dim`.
    fn havoc(&mut self, dim: usize);

    /// Truncating division `dim := src / divisor` for a positive constant
    /// divisor. The default is sound but coarse (havoc); domains may refine
    /// (exact when `src ≥ 0` is known: `divisor·dim ≤ src < divisor·dim +
    /// divisor` with `dim ≥ 0`).
    fn assign_div(&mut self, dim: usize, _src: &LinExpr, _divisor: Rat) {
        self.havoc(dim);
    }

    /// The infimum and supremum of `e` (`None` = unbounded / bottom).
    fn bounds(&self, e: &LinExpr) -> (Option<Rat>, Option<Rat>);

    /// Concretizes the element to a [`Polyhedron`] carrying at least the
    /// constraints this element represents (an over-approximation is fine
    /// but every returned constraint must be implied by the element).
    fn to_polyhedron(&self) -> Polyhedron;

    /// Abstracts a polyhedron into this domain: the result keeps the
    /// consequences of `poly`'s constraints the domain can represent, so
    /// `Self::from_polyhedron(p, n).to_polyhedron() ⊇ p` always holds
    /// (exactly `p` when the domain can express every constraint). This is
    /// the state-transport hook of incremental fixpoint seeding and the
    /// degradation ladder: converged post-states are stored as polyhedra
    /// and replayed into whichever domain the next analysis runs in.
    fn from_polyhedron(poly: &Polyhedron, dims: usize) -> Self {
        if poly.is_empty() {
            return Self::bottom(dims);
        }
        let mut d = Self::top(dims);
        for c in poly.constraints() {
            d.meet_constraint(c);
        }
        d
    }

    /// Membership test for a concrete point (used by soundness tests).
    fn contains_point(&self, point: &[Rat]) -> bool;

    /// Human-readable rendering (domains also implement `Display`; this
    /// default routes through `to_polyhedron`).
    fn describe(&self) -> String {
        format!("{}", self.to_polyhedron())
    }
}

impl AbstractDomain for Polyhedron {
    fn top(dims: usize) -> Self {
        Polyhedron::top(dims)
    }

    fn bottom(dims: usize) -> Self {
        Polyhedron::bottom(dims)
    }

    fn dims(&self) -> usize {
        Polyhedron::dims(self)
    }

    fn is_bottom(&self) -> bool {
        self.is_empty()
    }

    fn join(&self, other: &Self) -> Self {
        Polyhedron::join(self, other)
    }

    fn join_widen_point(&self, other: &Self) -> Self {
        Polyhedron::join_hulled(self, other)
    }

    fn widen(&self, newer: &Self) -> Self {
        Polyhedron::widen(self, newer)
    }

    fn includes(&self, other: &Self) -> bool {
        Polyhedron::includes(self, other)
    }

    fn meet_constraint(&mut self, c: &Constraint) {
        self.add_constraint(c.clone());
    }

    fn assign_linear(&mut self, dim: usize, e: &LinExpr) {
        self.assign(dim, e);
    }

    fn havoc(&mut self, dim: usize) {
        Polyhedron::havoc(self, dim);
    }

    fn assign_div(&mut self, dim: usize, src: &LinExpr, divisor: Rat) {
        Polyhedron::assign_div(self, dim, src, divisor);
    }

    fn bounds(&self, e: &LinExpr) -> (Option<Rat>, Option<Rat>) {
        Polyhedron::bounds(self, e)
    }

    fn to_polyhedron(&self) -> Polyhedron {
        self.clone()
    }

    fn from_polyhedron(poly: &Polyhedron, dims: usize) -> Self {
        debug_assert_eq!(poly.dims(), dims);
        poly.clone()
    }

    fn contains_point(&self, point: &[Rat]) -> bool {
        Polyhedron::contains_point(self, point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polyhedron_implements_the_trait() {
        let mut p = <Polyhedron as AbstractDomain>::top(2);
        p.meet_constraint(&Constraint::ge(&LinExpr::var(0), &LinExpr::constant(Rat::int(3))));
        assert!(!p.is_bottom());
        let (lo, hi) = p.bounds(&LinExpr::var(0));
        assert_eq!(lo, Some(Rat::int(3)));
        assert_eq!(hi, None);
        assert!(p.describe().contains(">= 0"));
    }
}
