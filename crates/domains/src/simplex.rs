//! An exact two-phase simplex solver over rationals.
//!
//! This is the optimization engine behind [`crate::Polyhedron`]: emptiness is
//! a feasibility question, entailment of `e ≥ 0` is `min e ≥ 0`, and the
//! symbolic bound extraction in `blazer-bounds` asks for suprema/infima of
//! cost expressions. Everything is exact rational arithmetic with Bland's
//! anti-cycling rule, so results are never approximate and the solver always
//! terminates.

use crate::linexpr::{Constraint, ConstraintKind, LinExpr};
use crate::rational::Rat;
use std::collections::BTreeSet;

/// The outcome of a linear program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpResult {
    /// The constraint system has no solution.
    Infeasible,
    /// The objective is unbounded in the requested direction.
    Unbounded,
    /// The optimum value.
    Optimal(Rat),
}

impl LpResult {
    /// The optimum, if one exists.
    pub fn optimal(self) -> Option<Rat> {
        match self {
            LpResult::Optimal(v) => Some(v),
            _ => None,
        }
    }
}

/// A dense simplex tableau. Construct one per query via
/// [`Simplex::maximize`] / [`Simplex::minimize`].
#[derive(Debug)]
pub struct Simplex {
    /// m rows × (n_cols + 1); last column is the right-hand side.
    rows: Vec<Vec<Rat>>,
    /// Objective row (reduced costs); last entry is minus the current value.
    obj: Vec<Rat>,
    /// Basis column index per row.
    basis: Vec<usize>,
    n_cols: usize,
    /// Columns that may not re-enter the basis (artificials in phase 2).
    banned: Vec<bool>,
}

impl Simplex {
    /// Maximizes `objective` subject to `constraints` (dimensions are
    /// unrestricted in sign).
    pub fn maximize(objective: &LinExpr, constraints: &[Constraint]) -> LpResult {
        solve(objective, constraints, true)
    }

    /// Minimizes `objective` subject to `constraints`.
    pub fn minimize(objective: &LinExpr, constraints: &[Constraint]) -> LpResult {
        match solve(&objective.scale(-Rat::ONE), constraints, true) {
            LpResult::Optimal(v) => LpResult::Optimal(-v),
            other => other,
        }
    }

    /// Whether the constraint system has any solution.
    pub fn feasible(constraints: &[Constraint]) -> bool {
        !matches!(solve(&LinExpr::zero(), constraints, true), LpResult::Infeasible)
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let pivot_val = self.rows[row][col];
        debug_assert!(!pivot_val.is_zero());
        let inv = pivot_val.recip();
        for v in self.rows[row].iter_mut() {
            *v = *v * inv;
        }
        let pivot_row = self.rows[row].clone();
        for (r, other) in self.rows.iter_mut().enumerate() {
            if r == row {
                continue;
            }
            let factor = other[col];
            if factor.is_zero() {
                continue;
            }
            for (v, p) in other.iter_mut().zip(pivot_row.iter()) {
                *v -= factor * *p;
            }
        }
        let factor = self.obj[col];
        if !factor.is_zero() {
            for (v, p) in self.obj.iter_mut().zip(pivot_row.iter()) {
                *v -= factor * *p;
            }
        }
        self.basis[row] = col;
    }

    /// Canonicalizes the objective row against the current basis.
    fn price_out(&mut self) {
        for r in 0..self.rows.len() {
            let b = self.basis[r];
            let factor = self.obj[b];
            if factor.is_zero() {
                continue;
            }
            let row = self.rows[r].clone();
            for (v, p) in self.obj.iter_mut().zip(row.iter()) {
                *v -= factor * *p;
            }
        }
    }

    /// Runs simplex iterations (maximization) until optimal (`Ok(true)`),
    /// unbounded (`Ok(false)`), or aborted by the analysis budget (`Err`).
    fn optimize(&mut self) -> Result<bool, blazer_ir::budget::Exhausted> {
        let mut pivots = 0u32;
        loop {
            // Pivots are the expensive inner unit of work: poll the budget
            // deadline every few of them so a single pathological solve
            // cannot blow past the deadline unnoticed. Saturated (overflowed)
            // arithmetic voids Bland's termination guarantee, so once the
            // overflow flag is up the tableau is garbage anyway — stop and
            // let the caller absorb the solve as a degraded answer.
            pivots += 1;
            if pivots.is_multiple_of(16) {
                blazer_ir::budget::check()?;
                if crate::rational::overflow_occurred() {
                    return Ok(false);
                }
            }
            // Bland's rule: smallest-index improving column.
            let enter = (0..self.n_cols).find(|&j| !self.banned[j] && self.obj[j] > Rat::ZERO);
            let Some(j) = enter else { return Ok(true) };
            // Ratio test: smallest rhs/coeff over positive coefficients,
            // ties broken by smallest basis index (Bland).
            let mut best: Option<(usize, Rat)> = None;
            for r in 0..self.rows.len() {
                let a = self.rows[r][j];
                if a > Rat::ZERO {
                    let ratio = self.rows[r][self.n_cols] / a;
                    let better = match &best {
                        None => true,
                        Some((br, bratio)) => {
                            ratio < *bratio || (ratio == *bratio && self.basis[r] < self.basis[*br])
                        }
                    };
                    if better {
                        best = Some((r, ratio));
                    }
                }
            }
            match best {
                Some((r, _)) => self.pivot(r, j),
                None => return Ok(false), // unbounded
            }
        }
    }

    /// Current objective value (the rhs entry of the objective row holds its
    /// negation).
    fn value(&self) -> Rat {
        -self.obj[self.n_cols]
    }
}

/// Global LP call counter (diagnostics; read with [`solve_calls`]).
pub static SOLVE_CALLS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Number of LP solves since process start.
pub fn solve_calls() -> u64 {
    SOLVE_CALLS.load(std::sync::atomic::Ordering::Relaxed)
}

/// The universally sound degraded answer: "unbounded" makes `feasible` answer
/// true, `entails` answer false, and `bounds` answer "no bound" — each an
/// over-approximation of whatever the exact solve would have said.
fn degraded(reason: &str) -> LpResult {
    blazer_ir::budget::note_degradation(format!("simplex: {reason}; answering unbounded"));
    LpResult::Unbounded
}

fn solve(objective: &LinExpr, constraints: &[Constraint], _maximize: bool) -> LpResult {
    SOLVE_CALLS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    if blazer_ir::budget::consume_lp_call().is_err() {
        return degraded("LP call denied by exhausted budget");
    }
    // Run the tableau with a clean overflow flag so saturation anywhere in
    // this solve is detected and absorbed here (restoring any outer state).
    let outer_overflow = crate::rational::take_overflow();
    let out = solve_inner(objective, constraints);
    let overflowed = crate::rational::take_overflow();
    if outer_overflow {
        crate::rational::set_overflow();
    }
    match out {
        Ok(result) if !overflowed => result,
        Ok(_) => {
            blazer_ir::budget::note_overflow();
            degraded("rational overflow absorbed")
        }
        Err(_) => degraded("aborted by analysis budget"),
    }
}

fn solve_inner(
    objective: &LinExpr,
    constraints: &[Constraint],
) -> Result<LpResult, blazer_ir::budget::Exhausted> {
    // Collect all dimensions mentioned anywhere.
    let mut dims: BTreeSet<usize> = objective.dims().collect();
    for c in constraints {
        dims.extend(c.expr.dims());
    }
    let dims: Vec<usize> = dims.into_iter().collect();
    let dim_col: std::collections::BTreeMap<usize, usize> =
        dims.iter().enumerate().map(|(i, &d)| (d, 2 * i)).collect();
    // Each unrestricted dimension d becomes x⁺ (col 2i) − x⁻ (col 2i+1).
    let n_vars = 2 * dims.len();
    let m = constraints.len();
    // Slack per inequality, artificial per row.
    let n_slacks = constraints.iter().filter(|c| c.kind == ConstraintKind::GeZero).count();
    let n_cols = n_vars + n_slacks + m;
    let art_base = n_vars + n_slacks;

    let mut rows: Vec<Vec<Rat>> = Vec::with_capacity(m);
    let mut basis = Vec::with_capacity(m);
    let mut slack_idx = 0;
    for (r, c) in constraints.iter().enumerate() {
        // expr ≥ 0  ⇔  expr − s = 0 with s ≥ 0; expr = 0 stays.
        let mut row = vec![Rat::ZERO; n_cols + 1];
        for (d, coeff) in c.expr.terms() {
            let col = dim_col[&d];
            row[col] += coeff;
            row[col + 1] -= coeff;
        }
        // Move constant to rhs: a·x + k {≥,=} 0  ⇒  a·x {≥,=} −k.
        let rhs = -c.expr.constant_part();
        row[n_cols] = rhs;
        if c.kind == ConstraintKind::GeZero {
            row[n_vars + slack_idx] = -Rat::ONE;
            slack_idx += 1;
        }
        // Normalize rhs ≥ 0.
        if row[n_cols].is_negative() {
            for v in row.iter_mut() {
                *v = -*v;
            }
        }
        // Artificial variable forms the initial basis.
        row[art_base + r] = Rat::ONE;
        basis.push(art_base + r);
        rows.push(row);
    }

    let mut t = Simplex {
        rows,
        obj: vec![Rat::ZERO; n_cols + 1],
        basis,
        n_cols,
        banned: vec![false; n_cols],
    };

    // Phase 1: maximize −Σ artificials.
    if m > 0 {
        for j in art_base..art_base + m {
            t.obj[j] = -Rat::ONE;
        }
        t.price_out();
        let bounded = t.optimize()?;
        if !bounded {
            // The phase-1 objective is bounded by construction, so this is
            // only reachable when saturated (overflowed) arithmetic corrupted
            // the tableau; the caller absorbs it as a degraded answer.
            return Ok(LpResult::Unbounded);
        }
        if t.value() < Rat::ZERO {
            return Ok(LpResult::Infeasible);
        }
        // Drive remaining artificials out of the basis.
        for r in 0..t.rows.len() {
            if t.basis[r] >= art_base {
                if let Some(j) = (0..art_base).find(|&j| !t.rows[r][j].is_zero()) {
                    t.pivot(r, j);
                }
                // Otherwise the row is a redundant 0 = 0 row; harmless.
            }
        }
        for j in art_base..art_base + m {
            t.banned[j] = true;
        }
    }

    // Phase 2: the real objective.
    t.obj = vec![Rat::ZERO; n_cols + 1];
    for (d, coeff) in objective.terms() {
        let col = dim_col[&d];
        t.obj[col] += coeff;
        t.obj[col + 1] -= coeff;
    }
    t.price_out();
    if !t.optimize()? {
        return Ok(LpResult::Unbounded);
    }
    Ok(LpResult::Optimal(t.value() + objective.constant_part()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128) -> Rat {
        Rat::int(n)
    }

    fn le(e: LinExpr, k: i128) -> Constraint {
        // e ≤ k  ⇔  k − e ≥ 0.
        Constraint::ge_zero(LinExpr::constant(r(k)).sub(&e))
    }

    fn ge(e: LinExpr, k: i128) -> Constraint {
        Constraint::ge_zero(e.add_constant(r(-k)))
    }

    #[test]
    fn simple_box() {
        // max x s.t. 0 ≤ x ≤ 5 → 5; min → 0.
        let x = LinExpr::var(0);
        let cs = vec![ge(x.clone(), 0), le(x.clone(), 5)];
        assert_eq!(Simplex::maximize(&x, &cs), LpResult::Optimal(r(5)));
        assert_eq!(Simplex::minimize(&x, &cs), LpResult::Optimal(r(0)));
    }

    #[test]
    fn unbounded_direction() {
        let x = LinExpr::var(0);
        let cs = vec![ge(x.clone(), 0)];
        assert_eq!(Simplex::maximize(&x, &cs), LpResult::Unbounded);
        assert_eq!(Simplex::minimize(&x, &cs), LpResult::Optimal(r(0)));
    }

    #[test]
    fn infeasible_system() {
        let x = LinExpr::var(0);
        let cs = vec![ge(x.clone(), 3), le(x.clone(), 2)];
        assert_eq!(Simplex::maximize(&x, &cs), LpResult::Infeasible);
        assert!(!Simplex::feasible(&cs));
    }

    #[test]
    fn equality_constraints() {
        // x + y = 10, x ≥ 2, y ≥ 3: max x = 7, min x = 2.
        let x = LinExpr::var(0);
        let y = LinExpr::var(1);
        let cs = vec![
            Constraint::eq_zero(x.add(&y).add_constant(r(-10))),
            ge(x.clone(), 2),
            ge(y.clone(), 3),
        ];
        assert_eq!(Simplex::maximize(&x, &cs), LpResult::Optimal(r(7)));
        assert_eq!(Simplex::minimize(&x, &cs), LpResult::Optimal(r(2)));
    }

    #[test]
    fn negative_solutions_allowed() {
        // Variables are unrestricted: min x s.t. x ≥ −7 is −7.
        let x = LinExpr::var(0);
        let cs = vec![ge(x.clone(), -7)];
        assert_eq!(Simplex::minimize(&x, &cs), LpResult::Optimal(r(-7)));
    }

    #[test]
    fn two_dim_polytope() {
        // max x + y s.t. x ≤ 4, y ≤ 3, x + 2y ≤ 8, x,y ≥ 0 → x=4, y=2 → 6.
        let x = LinExpr::var(0);
        let y = LinExpr::var(1);
        let cs = vec![
            le(x.clone(), 4),
            le(y.clone(), 3),
            le(x.add(&y.scale(r(2))), 8),
            ge(x.clone(), 0),
            ge(y.clone(), 0),
        ];
        assert_eq!(Simplex::maximize(&x.add(&y), &cs), LpResult::Optimal(r(6)));
    }

    #[test]
    fn fractional_optimum() {
        // max x s.t. 2x ≤ 5 → 5/2.
        let x = LinExpr::var(0);
        let cs = vec![le(x.scale(r(2)), 5)];
        assert_eq!(Simplex::maximize(&x, &cs), LpResult::Optimal(Rat::new(5, 2)));
    }

    #[test]
    fn objective_constant_offset() {
        // max (x + 100) s.t. x ≤ 1 → 101.
        let x = LinExpr::var(0);
        let cs = vec![le(x.clone(), 1)];
        assert_eq!(Simplex::maximize(&x.add_constant(r(100)), &cs), LpResult::Optimal(r(101)));
    }

    #[test]
    fn no_constraints() {
        let x = LinExpr::var(0);
        assert_eq!(Simplex::maximize(&x, &[]), LpResult::Unbounded);
        assert_eq!(Simplex::maximize(&LinExpr::constant(r(3)), &[]), LpResult::Optimal(r(3)));
        assert!(Simplex::feasible(&[]));
    }

    #[test]
    fn redundant_rows_are_harmless() {
        let x = LinExpr::var(0);
        let cs = vec![le(x.clone(), 5), le(x.clone(), 5), le(x.scale(r(2)), 10)];
        assert_eq!(Simplex::maximize(&x, &cs), LpResult::Optimal(r(5)));
    }

    #[test]
    fn degenerate_vertex_terminates() {
        // Three constraints meeting at a single vertex (0,0).
        let x = LinExpr::var(0);
        let y = LinExpr::var(1);
        let cs = vec![
            le(x.add(&y), 0),
            le(x.sub(&y), 0),
            le(x.clone(), 0),
            ge(x.clone(), 0),
            ge(y.clone(), 0),
        ];
        assert_eq!(Simplex::maximize(&x.add(&y), &cs), LpResult::Optimal(r(0)));
    }

    #[test]
    fn equality_only_point() {
        // x = 4 ∧ y = −2: objective 3x + y = 10.
        let x = LinExpr::var(0);
        let y = LinExpr::var(1);
        let cs = vec![
            Constraint::eq_zero(x.add_constant(r(-4))),
            Constraint::eq_zero(y.add_constant(r(2))),
        ];
        let obj = x.scale(r(3)).add(&y);
        assert_eq!(Simplex::maximize(&obj, &cs), LpResult::Optimal(r(10)));
        assert_eq!(Simplex::minimize(&obj, &cs), LpResult::Optimal(r(10)));
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The optimum of max x over random box constraints equals the
            /// tightest upper bound when one exists.
            #[test]
            fn box_bounds(lo in -50i128..50, width in 0i128..100) {
                let hi = lo + width;
                let x = LinExpr::var(0);
                let cs = vec![ge(x.clone(), lo), le(x.clone(), hi)];
                prop_assert_eq!(Simplex::maximize(&x, &cs), LpResult::Optimal(r(hi)));
                prop_assert_eq!(Simplex::minimize(&x, &cs), LpResult::Optimal(r(lo)));
            }

            /// Feasibility is monotone: adding constraints never turns an
            /// infeasible system feasible.
            #[test]
            fn feasibility_antimonotone(a in -20i128..20, b in -20i128..20, c in -20i128..20) {
                let x = LinExpr::var(0);
                let base = vec![ge(x.clone(), a), le(x.clone(), b)];
                let more = {
                    let mut v = base.clone();
                    v.push(ge(x.clone(), c));
                    v
                };
                if !Simplex::feasible(&base) {
                    prop_assert!(!Simplex::feasible(&more));
                }
            }

            /// max(e) ≥ min(e) whenever both exist.
            #[test]
            fn max_ge_min(a in -20i128..20, w in 0i128..40, c1 in -5i128..5, c2 in -5i128..5) {
                let x = LinExpr::var(0);
                let y = LinExpr::var(1);
                let cs = vec![
                    ge(x.clone(), a), le(x.clone(), a + w),
                    ge(y.clone(), a), le(y.clone(), a + w),
                ];
                let obj = x.scale(r(c1)).add(&y.scale(r(c2)));
                let mx = Simplex::maximize(&obj, &cs);
                let mn = Simplex::minimize(&obj, &cs);
                if let (LpResult::Optimal(hi), LpResult::Optimal(lo)) = (mx, mn) {
                    prop_assert!(hi >= lo);
                }
            }
        }
    }
}
