//! The octagon domain (`±x ± y ≤ c` constraints).

use crate::domain::AbstractDomain;
use crate::linexpr::{Constraint, ConstraintKind, LinExpr};
use crate::polyhedra::Polyhedron;
use crate::rational::Rat;
use std::fmt;

type Bound = Option<Rat>;

fn bmin(a: Bound, b: Bound) -> Bound {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (Some(x), None) | (None, Some(x)) => Some(x),
        (None, None) => None,
    }
}

fn badd(a: Bound, b: Bound) -> Bound {
    match (a, b) {
        (Some(x), Some(y)) => Some(x + y),
        _ => None,
    }
}

fn ble(a: Bound, b: Bound) -> bool {
    match (a, b) {
        (_, None) => true,
        (None, Some(_)) => false,
        (Some(x), Some(y)) => x <= y,
    }
}

/// Flips between the positive (`2d`) and negative (`2d+1`) form of a var.
fn bar(i: usize) -> usize {
    i ^ 1
}

/// The octagon abstract domain (Miné).
///
/// Each program dimension `d` gets two matrix indices: `2d` for `+x_d` and
/// `2d+1` for `−x_d`. Entry `m[i][j]` bounds `V_i − V_j ≤ m[i][j]`, so
/// octagonal constraints like `x + y ≤ c` are `V_{2i} − V_{2j+1} ≤ c`.
/// The coherence invariant `m[i][j] = m[bar(j)][bar(i)]` is maintained by
/// every mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Octagon {
    n: usize, // matrix side = 2 * dims
    m: Vec<Bound>,
    bottom: bool,
}

impl Octagon {
    fn get(&self, i: usize, j: usize) -> Bound {
        self.m[i * self.n + j]
    }

    fn set(&mut self, i: usize, j: usize, b: Bound) {
        self.m[i * self.n + j] = b;
        self.m[bar(j) * self.n + bar(i)] = b;
    }

    fn tighten(&mut self, i: usize, j: usize, b: Rat) {
        let v = bmin(self.get(i, j), Some(b));
        self.set(i, j, v);
    }

    /// Strong closure: shortest paths plus the unary strengthening step.
    fn close(&mut self) {
        if self.bottom {
            return;
        }
        let n = self.n;
        for _round in 0..2 {
            for k in 0..n {
                for i in 0..n {
                    let ik = self.get(i, k);
                    if ik.is_none() {
                        continue;
                    }
                    for j in 0..n {
                        let through = badd(ik, self.get(k, j));
                        if !ble(self.get(i, j), through) {
                            self.m[i * n + j] = through;
                        }
                    }
                }
            }
            // Strengthening: V_i − V_j ≤ (m[i][bar i] + m[bar j][j]) / 2.
            for i in 0..n {
                let half_i = self.get(i, bar(i));
                for j in 0..n {
                    if let (Some(a), Some(b)) = (half_i, self.get(bar(j), j)) {
                        let bound = (a + b) * Rat::new(1, 2);
                        if !ble(self.get(i, j), Some(bound)) {
                            self.m[i * n + j] = Some(bound);
                        }
                    }
                }
            }
        }
        // Restore exact coherence (the in-place loops above may have updated
        // only one of each coherent pair).
        for i in 0..n {
            for j in 0..n {
                let a = self.m[i * n + j];
                let b = self.m[bar(j) * n + bar(i)];
                let m = bmin(a, b);
                self.m[i * n + j] = m;
                self.m[bar(j) * n + bar(i)] = m;
            }
        }
        for i in 0..n {
            if let Some(d) = self.get(i, i) {
                if d.is_negative() {
                    self.bottom = true;
                    return;
                }
            }
        }
    }

    fn var_hi(&self, d: usize) -> Bound {
        // x ≤ m[2d][2d+1] / 2.
        self.get(2 * d, 2 * d + 1).map(|b| b * Rat::new(1, 2))
    }

    fn var_lo(&self, d: usize) -> Bound {
        // −x ≤ m[2d+1][2d] / 2 ⇒ x ≥ −that.
        self.get(2 * d + 1, 2 * d).map(|b| -(b * Rat::new(1, 2)))
    }

    /// Recognizes octagonal shapes `s1·x_i + s2·x_j + k` (s ∈ {±1}) or
    /// `s·x_i + k`; returns matrix indices (i, j) such that the expression
    /// equals `V_i − V_j + k` — except for the two-variable case where it
    /// returns the pair encoding.
    fn as_octagonal(e: &LinExpr) -> Option<OctShape> {
        let terms: Vec<(usize, Rat)> = e.terms().collect();
        let k = e.constant_part();
        match terms.as_slice() {
            [] => Some(OctShape::Const(k)),
            [(d, c)] if *c == Rat::ONE => Some(OctShape::Unary { pos: 2 * d, k }),
            [(d, c)] if *c == -Rat::ONE => Some(OctShape::Unary { pos: 2 * d + 1, k }),
            [(d1, c1), (d2, c2)] if (c1.abs() == Rat::ONE) && (c2.abs() == Rat::ONE) => {
                let i = if c1.is_positive() { 2 * d1 } else { 2 * d1 + 1 };
                let j = if c2.is_positive() { 2 * d2 } else { 2 * d2 + 1 };
                Some(OctShape::Binary { i, j, k })
            }
            _ => None,
        }
    }

    fn eval_interval(&self, e: &LinExpr) -> (Bound, Bound) {
        match Octagon::as_octagonal(e) {
            Some(OctShape::Const(k)) => (Some(k), Some(k)),
            Some(OctShape::Unary { pos, k }) => {
                let d = pos / 2;
                if pos.is_multiple_of(2) {
                    (badd(self.var_lo(d), Some(k)), badd(self.var_hi(d), Some(k)))
                } else {
                    let lo = self.var_hi(d).map(|v| -v + k);
                    let hi = self.var_lo(d).map(|v| -v + k);
                    (lo, hi)
                }
            }
            Some(OctShape::Binary { i, j, k }) => {
                // e = V_i + V_j + k; V_i + V_j ≤ m[i][bar j].
                let hi = self.get(i, bar(j)).map(|b| b + k);
                let lo = self.get(bar(i), j).map(|b| -b + k);
                (lo, hi)
            }
            None => {
                let mut lo = Some(e.constant_part());
                let mut hi = Some(e.constant_part());
                for (d, c) in e.terms() {
                    let (vlo, vhi) = (self.var_lo(d), self.var_hi(d));
                    let (tlo, thi) = if c.is_positive() {
                        (vlo.map(|v| v * c), vhi.map(|v| v * c))
                    } else {
                        (vhi.map(|v| v * c), vlo.map(|v| v * c))
                    };
                    lo = badd(lo, tlo);
                    hi = badd(hi, thi);
                }
                (lo, hi)
            }
        }
    }

    fn forget(&mut self, d: usize) {
        let (p, q) = (2 * d, 2 * d + 1);
        for i in 0..self.n {
            for &v in &[p, q] {
                if i != v {
                    self.m[i * self.n + v] = None;
                    self.m[v * self.n + i] = None;
                }
            }
        }
        self.m[p * self.n + q] = None;
        self.m[q * self.n + p] = None;
    }
}

#[derive(Debug)]
enum OctShape {
    Const(Rat),
    Unary { pos: usize, k: Rat },
    Binary { i: usize, j: usize, k: Rat },
}

impl AbstractDomain for Octagon {
    fn top(dims: usize) -> Self {
        let n = 2 * dims;
        let mut o = Octagon { n, m: vec![None; n * n], bottom: false };
        for i in 0..n {
            o.m[i * n + i] = Some(Rat::ZERO);
        }
        o
    }

    fn bottom(dims: usize) -> Self {
        let mut o = Octagon::top(dims);
        o.bottom = true;
        o
    }

    fn dims(&self) -> usize {
        self.n / 2
    }

    fn is_bottom(&self) -> bool {
        self.bottom
    }

    fn join(&self, other: &Self) -> Self {
        if self.bottom {
            return other.clone();
        }
        if other.bottom {
            return self.clone();
        }
        let mut a = self.clone();
        a.close();
        let mut b = other.clone();
        b.close();
        if a.bottom {
            return b;
        }
        if b.bottom {
            return a;
        }
        let mut out = Octagon::top(self.dims());
        for i in 0..self.n {
            for j in 0..self.n {
                out.m[i * self.n + j] = match (a.get(i, j), b.get(i, j)) {
                    (Some(x), Some(y)) => Some(x.max(y)),
                    _ => None,
                };
            }
        }
        out
    }

    fn widen(&self, newer: &Self) -> Self {
        if self.bottom {
            return newer.clone();
        }
        if newer.bottom {
            return self.clone();
        }
        let mut closed_new = newer.clone();
        closed_new.close();
        if closed_new.bottom {
            return self.clone();
        }
        let mut out = Octagon::top(self.dims());
        for i in 0..self.n {
            for j in 0..self.n {
                out.m[i * self.n + j] =
                    if ble(closed_new.get(i, j), self.get(i, j)) { self.get(i, j) } else { None };
            }
        }
        for i in 0..self.n {
            out.m[i * self.n + i] = Some(Rat::ZERO);
        }
        out
    }

    fn includes(&self, other: &Self) -> bool {
        if other.bottom {
            return true;
        }
        if self.bottom {
            return false;
        }
        let mut o = other.clone();
        o.close();
        if o.bottom {
            return true;
        }
        for i in 0..self.n {
            for j in 0..self.n {
                if !ble(o.get(i, j), self.get(i, j)) {
                    return false;
                }
            }
        }
        true
    }

    fn meet_constraint(&mut self, c: &Constraint) {
        if self.bottom {
            return;
        }
        for part in c.split() {
            let e = part.normalize().expr;
            match Octagon::as_octagonal(&e) {
                Some(OctShape::Const(k)) => {
                    if k.is_negative() {
                        self.bottom = true;
                        return;
                    }
                }
                // V_i + k ≥ 0  ⇔  −V_i ≤ k  ⇔  V_{bar i} − V_i ≤ 2k when
                // phrased on the doubled matrix: bar(i) − i ≤ 2k.
                Some(OctShape::Unary { pos, k }) => {
                    self.tighten(bar(pos), pos, k * Rat::int(2));
                }
                // V_i + V_j + k ≥ 0  ⇔  −V_i − V_j ≤ k  ⇔  V_{bar i} − V_j ≤ k.
                Some(OctShape::Binary { i, j, k }) => {
                    self.tighten(bar(i), j, k);
                }
                None => {
                    // Interval-style unary consequences.
                    let terms: Vec<(usize, Rat)> = e.terms().collect();
                    for &(d, a) in &terms {
                        let mut rest = e.clone();
                        rest.set_coeff(d, Rat::ZERO);
                        let (_, rest_hi) = self.eval_interval(&rest);
                        if let Some(rh) = rest_hi {
                            let bound = -rh / a;
                            if a.is_positive() {
                                // x_d ≥ bound ⇔ −x_d ≤ −bound.
                                self.tighten(2 * d + 1, 2 * d, -bound * Rat::int(2));
                            } else {
                                self.tighten(2 * d, 2 * d + 1, bound * Rat::int(2));
                            }
                        }
                    }
                }
            }
        }
        self.close();
        if !self.bottom && c.kind == ConstraintKind::GeZero {
            let (_, hi) = self.eval_interval(&c.expr);
            if let Some(h) = hi {
                if h.is_negative() {
                    self.bottom = true;
                }
            }
        }
    }

    fn assign_linear(&mut self, dim: usize, e: &LinExpr) {
        if self.bottom {
            return;
        }
        let terms: Vec<(usize, Rat)> = e.terms().collect();
        let k = e.constant_part();
        match terms.as_slice() {
            [] => {
                self.forget(dim);
                // x = k: x ≤ k and −x ≤ −k.
                self.tighten(2 * dim, 2 * dim + 1, k * Rat::int(2));
                self.tighten(2 * dim + 1, 2 * dim, -k * Rat::int(2));
            }
            [(d, c)] if *d == dim && *c == Rat::ONE => {
                // x := x + k: shift all entries involving x.
                let (p, q) = (2 * dim, 2 * dim + 1);
                for i in 0..self.n {
                    for j in 0..self.n {
                        if i == j {
                            continue;
                        }
                        let mut shift = Rat::ZERO;
                        if i == p {
                            shift += k;
                        }
                        if i == q {
                            shift -= k;
                        }
                        if j == p {
                            shift -= k;
                        }
                        if j == q {
                            shift += k;
                        }
                        if !shift.is_zero() {
                            let cur = self.m[i * self.n + j];
                            self.m[i * self.n + j] = cur.map(|b| b + shift);
                        }
                    }
                }
            }
            [(d, c)] if *d != dim && c.abs() == Rat::ONE => {
                // x := ±y + k.
                self.forget(dim);
                let y_pos = if c.is_positive() { 2 * d } else { 2 * d + 1 };
                // x − (±y) ≤ k and (±y) − x ≤ −k.
                self.tighten(2 * dim, y_pos, k);
                self.tighten(y_pos, 2 * dim, -k);
            }
            _ => {
                let (lo, hi) = self.eval_interval(e);
                self.forget(dim);
                if let Some(h) = hi {
                    self.tighten(2 * dim, 2 * dim + 1, h * Rat::int(2));
                }
                if let Some(l) = lo {
                    self.tighten(2 * dim + 1, 2 * dim, -l * Rat::int(2));
                }
            }
        }
        self.close();
    }

    fn havoc(&mut self, dim: usize) {
        if !self.bottom {
            self.forget(dim);
        }
    }

    fn bounds(&self, e: &LinExpr) -> (Option<Rat>, Option<Rat>) {
        if self.bottom {
            return (None, None);
        }
        let mut o = self.clone();
        o.close();
        if o.bottom {
            return (None, None);
        }
        o.eval_interval(e)
    }

    fn to_polyhedron(&self) -> Polyhedron {
        if self.bottom {
            return Polyhedron::bottom(self.dims());
        }
        let mut o = self.clone();
        o.close();
        if o.bottom {
            return Polyhedron::bottom(self.dims());
        }
        let signed = |pos: usize| -> LinExpr {
            let d = pos / 2;
            if pos.is_multiple_of(2) {
                LinExpr::var(d)
            } else {
                LinExpr::var(d).scale(-Rat::ONE)
            }
        };
        let mut p = Polyhedron::top(self.dims());
        for i in 0..self.n {
            for j in 0..self.n {
                if i == j {
                    continue;
                }
                if let Some(b) = o.get(i, j) {
                    // V_i − V_j ≤ b.
                    let e = LinExpr::constant(b).sub(&signed(i)).add(&signed(j));
                    p.add_constraint(Constraint::ge_zero(e));
                }
            }
        }
        p
    }

    fn contains_point(&self, point: &[Rat]) -> bool {
        if self.bottom {
            return false;
        }
        let val = |pos: usize| -> Rat {
            let v = point.get(pos / 2).copied().unwrap_or(Rat::ZERO);
            if pos.is_multiple_of(2) {
                v
            } else {
                -v
            }
        };
        for i in 0..self.n {
            for j in 0..self.n {
                if i == j {
                    continue;
                }
                if let Some(b) = self.get(i, j) {
                    if val(i) - val(j) > b {
                        return false;
                    }
                }
            }
        }
        true
    }
}

impl fmt::Display for Octagon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bottom {
            return f.write_str("⊥");
        }
        write!(f, "{}", self.to_polyhedron())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128) -> Rat {
        Rat::int(n)
    }

    fn x() -> LinExpr {
        LinExpr::var(0)
    }

    fn y() -> LinExpr {
        LinExpr::var(1)
    }

    #[test]
    fn unary_bounds() {
        let mut o = Octagon::top(1);
        o.meet_constraint(&Constraint::ge(&x(), &LinExpr::constant(r(2))));
        o.meet_constraint(&Constraint::le(&x(), &LinExpr::constant(r(9))));
        assert_eq!(o.bounds(&x()), (Some(r(2)), Some(r(9))));
    }

    #[test]
    fn sum_constraint_is_exact() {
        // x + y ≤ 4 is octagonal (unlike in zones).
        let mut o = Octagon::top(2);
        o.meet_constraint(&Constraint::le(&x().add(&y()), &LinExpr::constant(r(4))));
        assert_eq!(o.bounds(&x().add(&y())).1, Some(r(4)));
        // Adding y ≥ 1 propagates x ≤ 3.
        o.meet_constraint(&Constraint::ge(&y(), &LinExpr::constant(r(1))));
        assert_eq!(o.bounds(&x()).1, Some(r(3)));
    }

    #[test]
    fn difference_constraints() {
        let mut o = Octagon::top(2);
        o.meet_constraint(&Constraint::le(&x(), &y()));
        o.meet_constraint(&Constraint::le(&y(), &LinExpr::constant(r(5))));
        assert_eq!(o.bounds(&x()).1, Some(r(5)));
        assert_eq!(o.bounds(&x().sub(&y())).1, Some(r(0)));
    }

    #[test]
    fn infeasible_is_bottom() {
        let mut o = Octagon::top(1);
        o.meet_constraint(&Constraint::ge(&x(), &LinExpr::constant(r(5))));
        o.meet_constraint(&Constraint::le(&x(), &LinExpr::constant(r(2))));
        assert!(o.is_bottom());
    }

    #[test]
    fn assignment_constant_and_shift() {
        let mut o = Octagon::top(1);
        o.assign_linear(0, &LinExpr::constant(r(3)));
        assert_eq!(o.bounds(&x()), (Some(r(3)), Some(r(3))));
        o.assign_linear(0, &x().add_constant(r(2)));
        assert_eq!(o.bounds(&x()), (Some(r(5)), Some(r(5))));
    }

    #[test]
    fn assignment_negated_copy() {
        // y := −x with x ∈ [1, 2] ⇒ y ∈ [−2, −1] and x + y = 0.
        let mut o = Octagon::top(2);
        o.meet_constraint(&Constraint::ge(&x(), &LinExpr::constant(r(1))));
        o.meet_constraint(&Constraint::le(&x(), &LinExpr::constant(r(2))));
        o.assign_linear(1, &x().scale(-Rat::ONE));
        assert_eq!(o.bounds(&y()), (Some(r(-2)), Some(r(-1))));
        assert_eq!(o.bounds(&x().add(&y())), (Some(r(0)), Some(r(0))));
    }

    #[test]
    fn join_and_inclusion() {
        let mut a = Octagon::top(1);
        a.meet_constraint(&Constraint::eq(&x(), &LinExpr::constant(r(0))));
        let mut b = Octagon::top(1);
        b.meet_constraint(&Constraint::eq(&x(), &LinExpr::constant(r(4))));
        let j = a.join(&b);
        assert!(j.includes(&a) && j.includes(&b));
        assert_eq!(j.bounds(&x()), (Some(r(0)), Some(r(4))));
    }

    #[test]
    fn widening_stabilizes() {
        let mut inv = Octagon::top(1);
        inv.meet_constraint(&Constraint::eq(&x(), &LinExpr::constant(r(0))));
        for _ in 0..5 {
            let mut next = inv.clone();
            next.assign_linear(0, &x().add_constant(r(1)));
            let grown = inv.join(&next);
            let widened = inv.widen(&grown);
            if widened.includes(&inv) && inv.includes(&widened) {
                break;
            }
            inv = widened;
        }
        assert_eq!(inv.bounds(&x()).0, Some(r(0)));
        assert_eq!(inv.bounds(&x()).1, None);
    }

    #[test]
    fn to_polyhedron_keeps_sums() {
        let mut o = Octagon::top(2);
        o.meet_constraint(&Constraint::le(&x().add(&y()), &LinExpr::constant(r(4))));
        let p = o.to_polyhedron();
        assert!(p.entails(&Constraint::le(&x().add(&y()), &LinExpr::constant(r(4)))));
    }

    #[test]
    fn contains_point() {
        let mut o = Octagon::top(2);
        o.meet_constraint(&Constraint::le(&x().add(&y()), &LinExpr::constant(r(4))));
        assert!(o.contains_point(&[r(2), r(2)]));
        assert!(!o.contains_point(&[r(3), r(2)]));
    }
}
