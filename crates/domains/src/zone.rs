//! The zone domain: difference-bound matrices (`x - y ≤ c`, `±x ≤ c`).

use crate::domain::AbstractDomain;
use crate::linexpr::{Constraint, ConstraintKind, LinExpr};
use crate::polyhedra::Polyhedron;
use crate::rational::Rat;
use std::fmt;

/// An entry of a DBM: a finite bound or +∞.
type Bound = Option<Rat>;

fn bmin(a: Bound, b: Bound) -> Bound {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (Some(x), None) | (None, Some(x)) => Some(x),
        (None, None) => None,
    }
}

fn badd(a: Bound, b: Bound) -> Bound {
    match (a, b) {
        (Some(x), Some(y)) => Some(x + y),
        _ => None,
    }
}

/// `a ≤ b` treating `None` as +∞.
fn ble(a: Bound, b: Bound) -> bool {
    match (a, b) {
        (_, None) => true,
        (None, Some(_)) => false,
        (Some(x), Some(y)) => x <= y,
    }
}

/// The zone abstract domain over `dims` program dimensions.
///
/// Matrix entry `m[i][j]` bounds `xᵢ − xⱼ ≤ m[i][j]`, with the extra index
/// `0` denoting the constant zero (so `m[i+1][0]` is an upper bound on `xᵢ`
/// and `m[0][i+1]` an upper bound on `−xᵢ`). The matrix is kept closed
/// (shortest paths) except immediately after widening, which must not close
/// to guarantee termination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Zone {
    n: usize, // matrix side = dims + 1
    m: Vec<Bound>,
    bottom: bool,
}

impl Zone {
    fn idx(&self, i: usize, j: usize) -> usize {
        i * self.n + j
    }

    fn get(&self, i: usize, j: usize) -> Bound {
        self.m[self.idx(i, j)]
    }

    fn set(&mut self, i: usize, j: usize, b: Bound) {
        let k = self.idx(i, j);
        self.m[k] = b;
    }

    fn tighten(&mut self, i: usize, j: usize, b: Rat) {
        let cur = self.get(i, j);
        self.set(i, j, bmin(cur, Some(b)));
    }

    /// Floyd–Warshall closure; detects negative cycles (bottom).
    fn close(&mut self) {
        if self.bottom {
            return;
        }
        let n = self.n;
        for k in 0..n {
            for i in 0..n {
                let ik = self.get(i, k);
                if ik.is_none() {
                    continue;
                }
                for j in 0..n {
                    let through = badd(ik, self.get(k, j));
                    let cur = self.get(i, j);
                    if !ble(cur, through) {
                        self.set(i, j, through);
                    }
                }
            }
        }
        for i in 0..n {
            if let Some(d) = self.get(i, i) {
                if d.is_negative() {
                    self.bottom = true;
                    return;
                }
            }
        }
    }

    /// Upper bound on `xᵈ` (matrix index `d+1`).
    fn var_hi(&self, d: usize) -> Bound {
        self.get(d + 1, 0)
    }

    /// Lower bound on `xᵈ` (negated entry).
    fn var_lo(&self, d: usize) -> Bound {
        self.get(0, d + 1).map(|b| -b)
    }

    /// Recognizes `±xᵢ ∓ xⱼ + k` / `±xᵢ + k` shapes of a (normalized)
    /// expression; returns `(i, j, k)` as matrix indices encoding
    /// `x_i − x_j + k` with index 0 = the zero var.
    fn as_difference(e: &LinExpr) -> Option<(usize, usize, Rat)> {
        let terms: Vec<(usize, Rat)> = e.terms().collect();
        let k = e.constant_part();
        match terms.as_slice() {
            [] => Some((0, 0, k)),
            [(d, c)] if *c == Rat::ONE => Some((d + 1, 0, k)),
            [(d, c)] if *c == -Rat::ONE => Some((0, d + 1, k)),
            [(d1, c1), (d2, c2)] if *c1 == Rat::ONE && *c2 == -Rat::ONE => {
                Some((d1 + 1, d2 + 1, k))
            }
            [(d1, c1), (d2, c2)] if *c1 == -Rat::ONE && *c2 == Rat::ONE => {
                Some((d2 + 1, d1 + 1, k))
            }
            _ => None,
        }
    }

    /// Interval of a general linear expression from per-variable bounds.
    fn eval_interval(&self, e: &LinExpr) -> (Bound, Bound) {
        // Pure difference shapes use relational entries directly.
        if let Some((i, j, k)) = Zone::as_difference(e) {
            let hi = self.get(i, j).map(|b| b + k);
            let lo = self.get(j, i).map(|b| -b + k);
            return (lo, hi);
        }
        let mut lo = Some(e.constant_part());
        let mut hi = Some(e.constant_part());
        for (d, c) in e.terms() {
            let (vlo, vhi) = (self.var_lo(d), self.var_hi(d));
            let (tlo, thi) = if c.is_positive() {
                (vlo.map(|v| v * c), vhi.map(|v| v * c))
            } else {
                (vhi.map(|v| v * c), vlo.map(|v| v * c))
            };
            lo = badd(lo, tlo);
            hi = badd(hi, thi);
        }
        (lo, hi)
    }

    fn forget(&mut self, d: usize) {
        let v = d + 1;
        for i in 0..self.n {
            if i != v {
                self.set(i, v, None);
                self.set(v, i, None);
            }
        }
    }
}

impl AbstractDomain for Zone {
    fn top(dims: usize) -> Self {
        let n = dims + 1;
        let mut z = Zone { n, m: vec![None; n * n], bottom: false };
        for i in 0..n {
            z.set(i, i, Some(Rat::ZERO));
        }
        z
    }

    fn bottom(dims: usize) -> Self {
        let mut z = Zone::top(dims);
        z.bottom = true;
        z
    }

    fn dims(&self) -> usize {
        self.n - 1
    }

    fn is_bottom(&self) -> bool {
        self.bottom
    }

    fn join(&self, other: &Self) -> Self {
        if self.bottom {
            return other.clone();
        }
        if other.bottom {
            return self.clone();
        }
        let mut a = self.clone();
        a.close();
        let mut b = other.clone();
        b.close();
        if a.bottom {
            return b;
        }
        if b.bottom {
            return a;
        }
        let mut out = Zone::top(self.dims());
        for i in 0..self.n {
            for j in 0..self.n {
                let e = match (a.get(i, j), b.get(i, j)) {
                    (Some(x), Some(y)) => Some(x.max(y)),
                    _ => None,
                };
                out.set(i, j, e);
            }
        }
        out
    }

    fn widen(&self, newer: &Self) -> Self {
        if self.bottom {
            return newer.clone();
        }
        if newer.bottom {
            return self.clone();
        }
        let mut closed_new = newer.clone();
        closed_new.close();
        if closed_new.bottom {
            return self.clone();
        }
        let mut out = Zone::top(self.dims());
        for i in 0..self.n {
            for j in 0..self.n {
                // Keep stable entries, drop (to ∞) grown ones. Do NOT close
                // the result: closure could reintroduce finite bounds and
                // break termination.
                let e =
                    if ble(closed_new.get(i, j), self.get(i, j)) { self.get(i, j) } else { None };
                out.set(i, j, e);
            }
        }
        for i in 0..self.n {
            out.set(i, i, Some(Rat::ZERO));
        }
        out
    }

    fn includes(&self, other: &Self) -> bool {
        if other.bottom {
            return true;
        }
        if self.bottom {
            return false;
        }
        let mut o = other.clone();
        o.close();
        if o.bottom {
            return true;
        }
        for i in 0..self.n {
            for j in 0..self.n {
                if !ble(o.get(i, j), self.get(i, j)) {
                    return false;
                }
            }
        }
        true
    }

    fn meet_constraint(&mut self, c: &Constraint) {
        if self.bottom {
            return;
        }
        for part in c.split() {
            let e = part.normalize().expr;
            // e ≥ 0 with e = x_i − x_j + k  ⇔  x_j − x_i ≤ k.
            if let Some((i, j, k)) = Zone::as_difference(&e) {
                if i == j {
                    if k.is_negative() {
                        self.bottom = true;
                        return;
                    }
                    continue;
                }
                self.tighten(j, i, k);
            } else {
                // Approximate: derive unary consequences like the interval
                // domain (x_d ≥ (−k − sup(rest))/a).
                let terms: Vec<(usize, Rat)> = e.terms().collect();
                for &(d, a) in &terms {
                    let mut rest = e.clone();
                    rest.set_coeff(d, Rat::ZERO);
                    let (_, rest_hi) = self.eval_interval(&rest);
                    if let Some(rh) = rest_hi {
                        let bound = -rh / a;
                        if a.is_positive() {
                            // x_d ≥ bound ⇔ 0 − x_d ≤ −bound.
                            self.tighten(0, d + 1, -bound);
                        } else {
                            self.tighten(d + 1, 0, bound);
                        }
                    }
                }
            }
        }
        self.close();
        // Detect definite violation of the original constraint.
        if !self.bottom && c.kind == ConstraintKind::GeZero {
            let (_, hi) = self.eval_interval(&c.expr);
            if let Some(h) = hi {
                if h.is_negative() {
                    self.bottom = true;
                }
            }
        }
    }

    fn assign_linear(&mut self, dim: usize, e: &LinExpr) {
        if self.bottom {
            return;
        }
        let v = dim + 1;
        let terms: Vec<(usize, Rat)> = e.terms().collect();
        let k = e.constant_part();
        match terms.as_slice() {
            // x := k
            [] => {
                self.forget(dim);
                self.set(v, 0, Some(k));
                self.set(0, v, Some(-k));
            }
            // x := x + k — shift every relation involving x.
            [(d, c)] if *d == dim && *c == Rat::ONE => {
                for i in 0..self.n {
                    if i != v {
                        let up = self.get(v, i).map(|b| b + k);
                        self.set(v, i, up);
                        let lo = self.get(i, v).map(|b| b - k);
                        self.set(i, v, lo);
                    }
                }
            }
            // x := y + k (y ≠ x).
            [(d, c)] if *d != dim && *c == Rat::ONE => {
                self.forget(dim);
                let y = *d + 1;
                self.set(v, y, Some(k));
                self.set(y, v, Some(-k));
            }
            // General linear: interval fallback.
            _ => {
                let (lo, hi) = self.eval_interval(e);
                self.forget(dim);
                if let Some(h) = hi {
                    self.set(v, 0, Some(h));
                }
                if let Some(l) = lo {
                    self.set(0, v, Some(-l));
                }
            }
        }
        self.close();
    }

    fn havoc(&mut self, dim: usize) {
        if !self.bottom {
            self.forget(dim);
        }
    }

    fn bounds(&self, e: &LinExpr) -> (Option<Rat>, Option<Rat>) {
        if self.bottom {
            return (None, None);
        }
        let mut z = self.clone();
        z.close();
        if z.bottom {
            return (None, None);
        }
        z.eval_interval(e)
    }

    fn to_polyhedron(&self) -> Polyhedron {
        if self.bottom {
            return Polyhedron::bottom(self.dims());
        }
        let mut z = self.clone();
        z.close();
        if z.bottom {
            return Polyhedron::bottom(self.dims());
        }
        // Emit a minimal generating set (Larsen-style reduction) so the
        // exported polyhedron stays small even though the closed DBM is
        // dense. Indices on a zero cycle (x_i − x_j ≤ c and x_j − x_i ≤ −c)
        // form equality classes: emit one equality chain per class, then
        // inequalities among class representatives only, skipping entries
        // implied through a third representative. Among distinct classes
        // the implication relation is acyclic, so dropping implied entries
        // never loses information.
        let n = z.n;
        let mut rep: Vec<usize> = (0..n).collect();
        for i in 0..n {
            for j in 0..i {
                if let (Some(a), Some(b)) = (z.get(i, j), z.get(j, i)) {
                    if (a + b).is_zero() && rep[i] == i {
                        rep[i] = rep[j];
                    }
                }
            }
        }
        let term = |idx: usize| -> LinExpr {
            if idx == 0 {
                LinExpr::zero()
            } else {
                LinExpr::var(idx - 1)
            }
        };
        let mut p = Polyhedron::top(self.dims());
        // Equality chains within classes.
        for (i, &ri) in rep.iter().enumerate() {
            if ri != i {
                if let Some(b) = z.get(i, ri) {
                    // x_i − x_rep = b (the reverse entry is −b by the cycle).
                    p.add_constraint(Constraint::eq_zero(term(i).sub(&term(ri)).add_constant(-b)));
                }
            }
        }
        // Inequalities among representatives.
        let reps: Vec<usize> = (0..n).filter(|&i| rep[i] == i).collect();
        for &i in &reps {
            'pair: for &j in &reps {
                if i == j {
                    continue;
                }
                let Some(b) = z.get(i, j) else { continue };
                for &k in &reps {
                    if k == i || k == j {
                        continue;
                    }
                    if let (Some(x), Some(y)) = (z.get(i, k), z.get(k, j)) {
                        if x + y <= b {
                            continue 'pair; // implied through k
                        }
                    }
                }
                // x_i − x_j ≤ b.
                p.add_constraint(Constraint::ge_zero(
                    LinExpr::constant(b).sub(&term(i)).add(&term(j)),
                ));
            }
        }
        p
    }

    fn contains_point(&self, point: &[Rat]) -> bool {
        if self.bottom {
            return false;
        }
        let val = |i: usize| -> Rat {
            if i == 0 {
                Rat::ZERO
            } else {
                point.get(i - 1).copied().unwrap_or(Rat::ZERO)
            }
        };
        for i in 0..self.n {
            for j in 0..self.n {
                if let Some(b) = self.get(i, j) {
                    if val(i) - val(j) > b {
                        return false;
                    }
                }
            }
        }
        true
    }
}

impl fmt::Display for Zone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bottom {
            return f.write_str("⊥");
        }
        write!(f, "{}", self.to_polyhedron())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128) -> Rat {
        Rat::int(n)
    }

    fn x() -> LinExpr {
        LinExpr::var(0)
    }

    fn y() -> LinExpr {
        LinExpr::var(1)
    }

    #[test]
    fn unary_bounds() {
        let mut z = Zone::top(1);
        z.meet_constraint(&Constraint::ge(&x(), &LinExpr::constant(r(2))));
        z.meet_constraint(&Constraint::le(&x(), &LinExpr::constant(r(9))));
        assert_eq!(z.bounds(&x()), (Some(r(2)), Some(r(9))));
    }

    #[test]
    fn relational_bound_via_closure() {
        // x ≤ y ∧ y ≤ 5 ⇒ x ≤ 5 (needs the transitive closure).
        let mut z = Zone::top(2);
        z.meet_constraint(&Constraint::le(&x(), &y()));
        z.meet_constraint(&Constraint::le(&y(), &LinExpr::constant(r(5))));
        assert_eq!(z.bounds(&x()).1, Some(r(5)));
        // And the difference x − y is bounded above by 0.
        assert_eq!(z.bounds(&x().sub(&y())).1, Some(r(0)));
    }

    #[test]
    fn infeasible_is_bottom() {
        let mut z = Zone::top(1);
        z.meet_constraint(&Constraint::ge(&x(), &LinExpr::constant(r(5))));
        z.meet_constraint(&Constraint::le(&x(), &LinExpr::constant(r(2))));
        assert!(z.is_bottom());
    }

    #[test]
    fn assignment_shift() {
        // x ∈ [0, 3]; x := x + 2 ⇒ x ∈ [2, 5].
        let mut z = Zone::top(1);
        z.meet_constraint(&Constraint::ge(&x(), &LinExpr::constant(r(0))));
        z.meet_constraint(&Constraint::le(&x(), &LinExpr::constant(r(3))));
        z.assign_linear(0, &x().add_constant(r(2)));
        assert_eq!(z.bounds(&x()), (Some(r(2)), Some(r(5))));
    }

    #[test]
    fn assignment_copy_tracks_difference() {
        // y := x + 1 ⇒ y − x = 1 exactly.
        let mut z = Zone::top(2);
        z.assign_linear(1, &x().add_constant(r(1)));
        assert_eq!(z.bounds(&y().sub(&x())), (Some(r(1)), Some(r(1))));
    }

    #[test]
    fn join_hulls() {
        let mut a = Zone::top(1);
        a.meet_constraint(&Constraint::eq(&x(), &LinExpr::constant(r(0))));
        let mut b = Zone::top(1);
        b.meet_constraint(&Constraint::eq(&x(), &LinExpr::constant(r(4))));
        let j = a.join(&b);
        assert_eq!(j.bounds(&x()), (Some(r(0)), Some(r(4))));
        assert!(j.includes(&a) && j.includes(&b));
    }

    #[test]
    fn widening_terminates_counter_loop() {
        // Simulate i = 0; i := i + 1 repeatedly with widening.
        let mut inv = Zone::top(1);
        inv.meet_constraint(&Constraint::eq(&x(), &LinExpr::constant(r(0))));
        for _ in 0..5 {
            let mut next = inv.clone();
            next.assign_linear(0, &x().add_constant(r(1)));
            let grown = inv.join(&next);
            let widened = inv.widen(&grown);
            if widened.includes(&inv) && inv.includes(&widened) {
                break;
            }
            inv = widened;
        }
        // Stable invariant keeps the lower bound, loses the upper.
        assert_eq!(inv.bounds(&x()).0, Some(r(0)));
        assert_eq!(inv.bounds(&x()).1, None);
    }

    #[test]
    fn havoc_forgets_only_one_dim() {
        let mut z = Zone::top(2);
        z.meet_constraint(&Constraint::eq(&x(), &LinExpr::constant(r(1))));
        z.meet_constraint(&Constraint::eq(&y(), &LinExpr::constant(r(2))));
        z.havoc(0);
        assert_eq!(z.bounds(&x()), (None, None));
        assert_eq!(z.bounds(&y()), (Some(r(2)), Some(r(2))));
    }

    #[test]
    fn to_polyhedron_keeps_differences() {
        let mut z = Zone::top(2);
        z.meet_constraint(&Constraint::le(&x(), &y()));
        let p = z.to_polyhedron();
        assert!(p.entails(&Constraint::le(&x(), &y())));
    }

    #[test]
    fn contains_point_respects_differences() {
        let mut z = Zone::top(2);
        z.meet_constraint(&Constraint::le(&x(), &y()));
        assert!(z.contains_point(&[r(1), r(2)]));
        assert!(!z.contains_point(&[r(3), r(2)]));
    }

    #[test]
    fn general_constraint_approximated() {
        // x + y ≤ 4 with y ≥ 1 gives x ≤ 3 (via the interval fallback).
        let mut z = Zone::top(2);
        z.meet_constraint(&Constraint::ge(&y(), &LinExpr::constant(r(1))));
        z.meet_constraint(&Constraint::le(&x().add(&y()), &LinExpr::constant(r(4))));
        assert_eq!(z.bounds(&x()).1, Some(r(3)));
    }
}
