//! # blazer-domains
//!
//! Numerical abstract domains for the Blazer reproduction.
//!
//! The original tool computed numeric invariants with the Parma Polyhedra
//! Library (PPL). This crate is the from-scratch Rust substitute. It provides
//! exact rational arithmetic, linear expressions and constraints, an exact
//! two-phase simplex solver, and four abstract domains of increasing
//! precision:
//!
//! * [`Interval`] — per-dimension ranges;
//! * [`Zone`] — difference-bound matrices (`x - y ≤ c`);
//! * [`Octagon`] — `±x ± y ≤ c` constraints;
//! * [`Polyhedron`] — arbitrary rational convex polyhedra in constraint
//!   representation with Fourier–Motzkin projection and LP-based entailment.
//!
//! All domains implement [`AbstractDomain`], so the abstract interpreter in
//! `blazer-absint` is generic over precision (used by the domain-ablation
//! benchmark). Every domain can also concretize to a [`Polyhedron`] via
//! [`AbstractDomain::to_polyhedron`], which is what the symbolic bound
//! extraction in `blazer-bounds` consumes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod domain;
pub mod interval;
pub mod linexpr;
pub mod octagon;
pub mod polyhedra;
pub mod rational;
pub mod simplex;
pub mod zone;

pub use domain::AbstractDomain;
pub use interval::{Interval, IntervalVec};
pub use linexpr::{Constraint, ConstraintKind, LinExpr};
pub use octagon::Octagon;
pub use polyhedra::Polyhedron;
pub use rational::Rat;
pub use simplex::{LpResult, Simplex};
pub use zone::Zone;
