//! Linear expressions and constraints over numbered dimensions.

use crate::rational::Rat;
use std::collections::BTreeMap;
use std::fmt;

/// A linear expression `Σ cᵢ·xᵢ + k` over dimensions `xᵢ`.
///
/// Dimensions are plain `usize` indices; the mapping from IR variables to
/// dimensions is owned by the analyses in `blazer-absint`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct LinExpr {
    /// Non-zero coefficients only.
    coeffs: BTreeMap<usize, Rat>,
    constant: Rat,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        LinExpr::default()
    }

    /// A constant expression.
    pub fn constant(k: Rat) -> Self {
        LinExpr { coeffs: BTreeMap::new(), constant: k }
    }

    /// The expression `1·x`.
    pub fn var(dim: usize) -> Self {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(dim, Rat::ONE);
        LinExpr { coeffs, constant: Rat::ZERO }
    }

    /// The expression `c·x`.
    pub fn term(dim: usize, c: Rat) -> Self {
        let mut e = LinExpr::zero();
        e.set_coeff(dim, c);
        e
    }

    /// The constant part `k`.
    pub fn constant_part(&self) -> Rat {
        self.constant
    }

    /// The coefficient of dimension `dim` (zero if absent).
    pub fn coeff(&self, dim: usize) -> Rat {
        self.coeffs.get(&dim).copied().unwrap_or(Rat::ZERO)
    }

    /// Sets the coefficient of `dim` (removing it when zero).
    pub fn set_coeff(&mut self, dim: usize, c: Rat) {
        if c.is_zero() {
            self.coeffs.remove(&dim);
        } else {
            self.coeffs.insert(dim, c);
        }
    }

    /// Sets the constant part.
    pub fn set_constant(&mut self, k: Rat) {
        self.constant = k;
    }

    /// Iterates over `(dim, coeff)` pairs with non-zero coefficients.
    pub fn terms(&self) -> impl Iterator<Item = (usize, Rat)> + '_ {
        self.coeffs.iter().map(|(&d, &c)| (d, c))
    }

    /// The dimensions with non-zero coefficients.
    pub fn dims(&self) -> impl Iterator<Item = usize> + '_ {
        self.coeffs.keys().copied()
    }

    /// Whether the expression is a constant.
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Whether the expression is exactly `1·dim + 0` for some dimension.
    pub fn as_single_var(&self) -> Option<usize> {
        if self.constant.is_zero() && self.coeffs.len() == 1 {
            let (&d, &c) = self.coeffs.iter().next().unwrap();
            if c == Rat::ONE {
                return Some(d);
            }
        }
        None
    }

    /// `self + other`.
    pub fn add(&self, other: &LinExpr) -> LinExpr {
        let mut out = self.clone();
        for (d, c) in other.terms() {
            out.set_coeff(d, out.coeff(d) + c);
        }
        out.constant += other.constant;
        out
    }

    /// `self - other`.
    pub fn sub(&self, other: &LinExpr) -> LinExpr {
        self.add(&other.scale(-Rat::ONE))
    }

    /// `k · self`.
    pub fn scale(&self, k: Rat) -> LinExpr {
        if k.is_zero() {
            return LinExpr::zero();
        }
        let mut out = LinExpr::zero();
        for (d, c) in self.terms() {
            out.set_coeff(d, c * k);
        }
        out.constant = self.constant * k;
        out
    }

    /// `self + k`.
    pub fn add_constant(&self, k: Rat) -> LinExpr {
        let mut out = self.clone();
        out.constant += k;
        out
    }

    /// Substitutes `dim := replacement` in this expression.
    pub fn substitute(&self, dim: usize, replacement: &LinExpr) -> LinExpr {
        let c = self.coeff(dim);
        if c.is_zero() {
            return self.clone();
        }
        let mut out = self.clone();
        out.set_coeff(dim, Rat::ZERO);
        out.add(&replacement.scale(c))
    }

    /// Renames dimensions via `f` (must be injective on this expression's
    /// dimensions).
    pub fn rename(&self, mut f: impl FnMut(usize) -> usize) -> LinExpr {
        let mut out = LinExpr::constant(self.constant);
        for (d, c) in self.terms() {
            let nd = f(d);
            assert!(out.coeff(nd).is_zero(), "non-injective rename");
            out.set_coeff(nd, c);
        }
        out
    }

    /// Evaluates the expression under an assignment of dimensions.
    pub fn eval(&self, value_of: impl Fn(usize) -> Rat) -> Rat {
        let mut acc = self.constant;
        for (d, c) in self.terms() {
            acc += c * value_of(d);
        }
        acc
    }

    /// Scales the expression so all coefficients and the constant are
    /// integers with gcd 1 (sign preserved). Useful for canonical forms.
    ///
    /// When the denominator lcm (or the scaling itself) would overflow
    /// `i128`, the expression is returned unnormalized — a sound no-op that
    /// merely costs syntactic deduplication.
    pub fn normalize_integer(&self) -> LinExpr {
        let mut lcm: i128 = self.constant.denom();
        for (_, c) in self.terms() {
            let d = c.denom();
            let Some(next) = (lcm / gcd_i128(lcm, d)).checked_mul(d) else {
                blazer_ir::budget::note_overflow();
                return self.clone();
            };
            lcm = next;
        }
        let flag_before = crate::rational::take_overflow();
        let scaled = self.scale(Rat::int(lcm));
        let scaling_overflowed = crate::rational::take_overflow();
        if flag_before {
            crate::rational::set_overflow();
        }
        if scaling_overflowed {
            blazer_ir::budget::note_overflow();
            return self.clone();
        }
        let mut g: i128 = scaled.constant.numer().abs();
        for (_, c) in scaled.terms() {
            g = gcd_i128(g, c.numer().abs());
        }
        if g > 1 {
            scaled.scale(Rat::new(1, g))
        } else {
            scaled
        }
    }
}

fn gcd_i128(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (d, c) in self.terms() {
            if first {
                if c == Rat::ONE {
                    write!(f, "x{d}")?;
                } else if c == -Rat::ONE {
                    write!(f, "-x{d}")?;
                } else {
                    write!(f, "{c}*x{d}")?;
                }
                first = false;
            } else if c.is_negative() {
                if c == -Rat::ONE {
                    write!(f, " - x{d}")?;
                } else {
                    write!(f, " - {}*x{d}", -c)?;
                }
            } else if c == Rat::ONE {
                write!(f, " + x{d}")?;
            } else {
                write!(f, " + {c}*x{d}")?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant.is_positive() {
            write!(f, " + {}", self.constant)?;
        } else if self.constant.is_negative() {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

/// The sense of a [`Constraint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintKind {
    /// `expr ≥ 0`.
    GeZero,
    /// `expr = 0`.
    EqZero,
}

/// A linear constraint `expr ≥ 0` or `expr = 0`.
///
/// Strict inequalities never appear: the IR is integer-valued, so the
/// front-ends tighten `e > 0` to `e - 1 ≥ 0` before constructing constraints.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Constraint {
    /// The left-hand expression.
    pub expr: LinExpr,
    /// Inequality or equality.
    pub kind: ConstraintKind,
}

impl Constraint {
    /// `expr ≥ 0`.
    pub fn ge_zero(expr: LinExpr) -> Self {
        Constraint { expr, kind: ConstraintKind::GeZero }
    }

    /// `expr = 0`.
    pub fn eq_zero(expr: LinExpr) -> Self {
        Constraint { expr, kind: ConstraintKind::EqZero }
    }

    /// `lhs ≥ rhs` as `lhs - rhs ≥ 0`.
    pub fn ge(lhs: &LinExpr, rhs: &LinExpr) -> Self {
        Constraint::ge_zero(lhs.sub(rhs))
    }

    /// `lhs ≤ rhs` as `rhs - lhs ≥ 0`.
    pub fn le(lhs: &LinExpr, rhs: &LinExpr) -> Self {
        Constraint::ge_zero(rhs.sub(lhs))
    }

    /// `lhs = rhs` as `lhs - rhs = 0`.
    pub fn eq(lhs: &LinExpr, rhs: &LinExpr) -> Self {
        Constraint::eq_zero(lhs.sub(rhs))
    }

    /// Whether a concrete assignment satisfies the constraint.
    pub fn satisfied_by(&self, value_of: impl Fn(usize) -> Rat) -> bool {
        let v = self.expr.eval(value_of);
        match self.kind {
            ConstraintKind::GeZero => v >= Rat::ZERO,
            ConstraintKind::EqZero => v.is_zero(),
        }
    }

    /// Splits an equality into its two inequality halves; an inequality is
    /// returned unchanged as a singleton.
    pub fn split(&self) -> Vec<Constraint> {
        match self.kind {
            ConstraintKind::GeZero => vec![self.clone()],
            ConstraintKind::EqZero => vec![
                Constraint::ge_zero(self.expr.clone()),
                Constraint::ge_zero(self.expr.scale(-Rat::ONE)),
            ],
        }
    }

    /// A canonical form with integer, gcd-reduced coefficients. Preserves
    /// the solution set; makes syntactic deduplication effective.
    pub fn normalize(&self) -> Constraint {
        let mut expr = self.expr.normalize_integer();
        if self.kind == ConstraintKind::EqZero {
            // Fix the sign of equalities: first non-zero coefficient positive.
            let lead = expr.terms().next().map(|(_, c)| c);
            let flip = match lead {
                Some(c) => c.is_negative(),
                None => expr.constant_part().is_negative(),
            };
            if flip {
                expr = expr.scale(-Rat::ONE);
            }
        }
        Constraint { expr, kind: self.kind }
    }

    /// Whether the constraint mentions no dimensions (and is thus either
    /// trivially true or trivially false).
    pub fn is_trivial(&self) -> Option<bool> {
        if !self.expr.is_constant() {
            return None;
        }
        let k = self.expr.constant_part();
        Some(match self.kind {
            ConstraintKind::GeZero => k >= Rat::ZERO,
            ConstraintKind::EqZero => k.is_zero(),
        })
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ConstraintKind::GeZero => write!(f, "{} >= 0", self.expr),
            ConstraintKind::EqZero => write!(f, "{} == 0", self.expr),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128) -> Rat {
        Rat::int(n)
    }

    #[test]
    fn construction_and_access() {
        let e = LinExpr::var(2).scale(r(3)).add_constant(r(5));
        assert_eq!(e.coeff(2), r(3));
        assert_eq!(e.coeff(0), Rat::ZERO);
        assert_eq!(e.constant_part(), r(5));
        assert!(!e.is_constant());
        assert!(LinExpr::constant(r(7)).is_constant());
    }

    #[test]
    fn arithmetic_combines_terms() {
        let a = LinExpr::var(0).add(&LinExpr::var(1).scale(r(2)));
        let b = LinExpr::var(0).scale(-Rat::ONE).add_constant(r(4));
        let s = a.add(&b);
        assert_eq!(s.coeff(0), Rat::ZERO);
        assert_eq!(s.coeff(1), r(2));
        assert_eq!(s.constant_part(), r(4));
        // Zero coefficients are removed from the map.
        assert_eq!(s.dims().count(), 1);
    }

    #[test]
    fn substitution() {
        // e = 2x0 + x1; x0 := x1 + 3  ⇒  e = 3x1 + 6.
        let e = LinExpr::var(0).scale(r(2)).add(&LinExpr::var(1));
        let replacement = LinExpr::var(1).add_constant(r(3));
        let s = e.substitute(0, &replacement);
        assert_eq!(s.coeff(0), Rat::ZERO);
        assert_eq!(s.coeff(1), r(3));
        assert_eq!(s.constant_part(), r(6));
    }

    #[test]
    fn eval() {
        let e = LinExpr::var(0).scale(r(2)).add(&LinExpr::var(1)).add_constant(r(1));
        let v = e.eval(|d| if d == 0 { r(3) } else { r(4) });
        assert_eq!(v, r(11));
    }

    #[test]
    fn as_single_var() {
        assert_eq!(LinExpr::var(4).as_single_var(), Some(4));
        assert_eq!(LinExpr::var(4).scale(r(2)).as_single_var(), None);
        assert_eq!(LinExpr::var(4).add_constant(r(1)).as_single_var(), None);
    }

    #[test]
    fn constraint_satisfaction() {
        // x0 - 3 ≥ 0
        let c = Constraint::ge_zero(LinExpr::var(0).add_constant(r(-3)));
        assert!(c.satisfied_by(|_| r(3)));
        assert!(c.satisfied_by(|_| r(5)));
        assert!(!c.satisfied_by(|_| r(2)));
        // x0 - 3 = 0
        let c = Constraint::eq_zero(LinExpr::var(0).add_constant(r(-3)));
        assert!(c.satisfied_by(|_| r(3)));
        assert!(!c.satisfied_by(|_| r(4)));
    }

    #[test]
    fn equality_splits_into_halves() {
        let c = Constraint::eq_zero(LinExpr::var(0));
        let parts = c.split();
        assert_eq!(parts.len(), 2);
        assert!(parts.iter().all(|p| p.kind == ConstraintKind::GeZero));
        let ge = Constraint::ge_zero(LinExpr::var(0));
        assert_eq!(ge.split().len(), 1);
    }

    #[test]
    fn normalization_reduces_coefficients() {
        // 4x0 - 8 ≥ 0 normalizes to x0 - 2 ≥ 0.
        let c = Constraint::ge_zero(LinExpr::var(0).scale(r(4)).add_constant(r(-8)));
        let n = c.normalize();
        assert_eq!(n.expr.coeff(0), Rat::ONE);
        assert_eq!(n.expr.constant_part(), r(-2));
        // Fractions clear: (1/2)x0 + 1/3 ≥ 0 → 3x0 + 2 ≥ 0.
        let c =
            Constraint::ge_zero(LinExpr::var(0).scale(Rat::new(1, 2)).add_constant(Rat::new(1, 3)));
        let n = c.normalize();
        assert_eq!(n.expr.coeff(0), r(3));
        assert_eq!(n.expr.constant_part(), r(2));
    }

    #[test]
    fn normalization_overflow_is_a_sound_noop() {
        // The denominator lcm (2^126 · 3) exceeds i128: normalization must
        // return the expression unchanged instead of panicking or wrapping.
        let e = LinExpr::var(0)
            .scale(Rat::new(1, 1i128 << 126))
            .add(&LinExpr::var(1).scale(Rat::new(1, 3)));
        let n = e.normalize_integer();
        assert_eq!(n, e);
        let _ = crate::rational::take_overflow();
    }

    #[test]
    fn trivial_detection() {
        assert_eq!(Constraint::ge_zero(LinExpr::constant(r(1))).is_trivial(), Some(true));
        assert_eq!(Constraint::ge_zero(LinExpr::constant(r(-1))).is_trivial(), Some(false));
        assert_eq!(Constraint::eq_zero(LinExpr::constant(Rat::ZERO)).is_trivial(), Some(true));
        assert_eq!(Constraint::ge_zero(LinExpr::var(0)).is_trivial(), None);
    }

    #[test]
    fn display_is_readable() {
        let e = LinExpr::var(0).scale(r(2)).add(&LinExpr::var(1).scale(r(-1))).add_constant(r(-3));
        assert_eq!(e.to_string(), "2*x0 - x1 - 3");
        assert_eq!(LinExpr::constant(r(0)).to_string(), "0");
    }
}
