//! Lattice/soundness laws checked uniformly across all four abstract
//! domains through the `AbstractDomain` trait — the contract the abstract
//! interpreter relies on.

use blazer_domains::{
    AbstractDomain, Constraint, IntervalVec, LinExpr, Octagon, Polyhedron, Rat, Zone,
};
use proptest::prelude::*;

/// A small random meet program: a list of interval constraints plus a few
/// relational ones, applied in order.
#[derive(Debug, Clone)]
struct Spec {
    boxes: Vec<(usize, i64, i64)>,
    diffs: Vec<(usize, usize, i64)>,
    assigns: Vec<(usize, usize, i64)>, // dst := src + k
}

const DIMS: usize = 3;

fn spec_strategy() -> impl Strategy<Value = Spec> {
    let boxes = proptest::collection::vec((0..DIMS, -10i64..10, 0i64..15), 0..4)
        .prop_map(|v| v.into_iter().map(|(d, lo, w)| (d, lo, lo + w)).collect());
    let diffs = proptest::collection::vec((0..DIMS, 0..DIMS, -10i64..10), 0..3);
    let assigns = proptest::collection::vec((0..DIMS, 0..DIMS, -5i64..5), 0..3);
    (boxes, diffs, assigns).prop_map(|(boxes, diffs, assigns)| Spec { boxes, diffs, assigns })
}

fn build<D: AbstractDomain>(spec: &Spec) -> D {
    let mut d = D::top(DIMS);
    for &(dim, lo, hi) in &spec.boxes {
        d.meet_constraint(&Constraint::ge(
            &LinExpr::var(dim),
            &LinExpr::constant(Rat::int(lo as i128)),
        ));
        d.meet_constraint(&Constraint::le(
            &LinExpr::var(dim),
            &LinExpr::constant(Rat::int(hi as i128)),
        ));
    }
    for &(a, b, k) in &spec.diffs {
        if a != b {
            // x_a − x_b ≤ k.
            d.meet_constraint(&Constraint::le(
                &LinExpr::var(a).sub(&LinExpr::var(b)),
                &LinExpr::constant(Rat::int(k as i128)),
            ));
        }
    }
    for &(dst, src, k) in &spec.assigns {
        d.assign_linear(dst, &LinExpr::var(src).add_constant(Rat::int(k as i128)));
    }
    d
}

/// Concrete points to test membership against.
fn points() -> Vec<[Rat; DIMS]> {
    let vals = [-12i64, -3, 0, 2, 7, 13];
    let mut out = Vec::new();
    for &a in &vals {
        for &b in &vals {
            for &c in &vals {
                out.push([Rat::int(a as i128), Rat::int(b as i128), Rat::int(c as i128)]);
            }
        }
    }
    out
}

fn check_laws<D: AbstractDomain>(s1: &Spec, s2: &Spec) {
    let a: D = build(s1);
    let b: D = build(s2);
    // Join is an upper bound.
    let j = a.join(&b);
    assert!(j.includes(&a), "join ⊇ lhs");
    assert!(j.includes(&b), "join ⊇ rhs");
    // Widening over-approximates the join.
    let w = a.widen(&j);
    assert!(w.includes(&j), "widen ⊇ join");
    // Inclusion is reflexive; bottom is the least element.
    assert!(a.includes(&a));
    assert!(a.includes(&D::bottom(DIMS)));
    assert!(D::top(DIMS).includes(&a));
    // Point soundness: a member of either side is a member of the join and
    // of the polyhedral concretization.
    for pt in points() {
        let inside_a = a.contains_point(&pt);
        let inside_b = b.contains_point(&pt);
        if inside_a || inside_b {
            assert!(j.contains_point(&pt), "join must keep {pt:?}");
        }
        if inside_a {
            assert!(a.to_polyhedron().contains_point(&pt), "to_polyhedron must over-approximate");
        }
    }
    // bounds() is sound w.r.t. membership.
    let e = LinExpr::var(0).add(&LinExpr::var(1).scale(Rat::int(2)));
    let (lo, hi) = a.bounds(&e);
    for pt in points() {
        if a.contains_point(&pt) {
            let v = e.eval(|d| pt[d]);
            if let Some(l) = lo {
                assert!(v >= l, "bound lower violated at {pt:?}");
            }
            if let Some(h) = hi {
                assert!(v <= h, "bound upper violated at {pt:?}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn interval_laws(s1 in spec_strategy(), s2 in spec_strategy()) {
        check_laws::<IntervalVec>(&s1, &s2);
    }

    #[test]
    fn zone_laws(s1 in spec_strategy(), s2 in spec_strategy()) {
        check_laws::<Zone>(&s1, &s2);
    }

    #[test]
    fn octagon_laws(s1 in spec_strategy(), s2 in spec_strategy()) {
        check_laws::<Octagon>(&s1, &s2);
    }

    #[test]
    fn polyhedron_laws(s1 in spec_strategy(), s2 in spec_strategy()) {
        check_laws::<Polyhedron>(&s1, &s2);
    }

    /// Precision ordering: polyhedra refine octagons refine zones refine
    /// intervals — every point excluded by a weaker domain is excluded by
    /// the stronger ones too... conversely, membership in the stronger
    /// domain implies membership in the weaker (they over-approximate).
    #[test]
    fn precision_hierarchy(s in spec_strategy()) {
        let poly: Polyhedron = build(&s);
        let oct: Octagon = build(&s);
        let zone: Zone = build(&s);
        let iv: IntervalVec = build(&s);
        for pt in points() {
            if poly.contains_point(&pt) {
                prop_assert!(oct.contains_point(&pt), "octagon ⊇ polyhedra at {pt:?}");
            }
            if oct.contains_point(&pt) {
                prop_assert!(zone.contains_point(&pt) || !zone_representable(&s),
                    "zone ⊇ octagon at {pt:?}");
            }
            if zone.contains_point(&pt) {
                prop_assert!(iv.contains_point(&pt), "interval ⊇ zone at {pt:?}");
            }
        }
    }
}

/// Zones cannot represent sum constraints; the hierarchy check between
/// octagon and zone only applies when no such constraint was used (our
/// spec only emits boxes and differences, so this is always true — kept as
/// a guard for future spec extensions).
fn zone_representable(_s: &Spec) -> bool {
    true
}
