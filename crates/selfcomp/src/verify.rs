//! Verifying `|k₁ − k₂| ≤ c` on the composed program.

use crate::compose::{compose, Composed};
use blazer_absint::engine::analyze;
use blazer_absint::transfer::entry_state;
use blazer_absint::{DimMap, ProductGraph};
use blazer_domains::{LinExpr, Polyhedron, Rat};
use blazer_ir::cost::CostModel;
use blazer_ir::{Cfg, Program};
use std::time::{Duration, Instant};

/// The outcome of the self-composition baseline.
#[derive(Debug, Clone)]
pub struct SelfCompResult {
    /// Whether `|k₁ − k₂| ≤ epsilon` was proved at the composed exit.
    pub verified: bool,
    /// The bounds the analysis derived for `k₁ − k₂` (`None` = unbounded).
    pub diff_bounds: (Option<Rat>, Option<Rat>),
    /// Wall-clock analysis time.
    pub time: Duration,
    /// Number of basic blocks of the composed program (state-space blowup
    /// indicator).
    pub composed_blocks: usize,
}

/// Runs the self-composition baseline on `func`: compose, analyze with the
/// polyhedral abstract interpreter, and check the counter difference at the
/// exit against `epsilon`.
///
/// # Panics
///
/// Panics if `func` is not in `program` (this is a benchmark harness, not a
/// public API surface).
pub fn verify(
    program: &Program,
    func: &str,
    epsilon: u64,
    cost_model: &CostModel,
) -> SelfCompResult {
    let f = program.function(func).unwrap_or_else(|| panic!("no function `{func}`"));
    let start = Instant::now();
    if !cost_model.exact_for(f) {
        // The baseline prices blocks by constant counter increments, which
        // cannot express the cache model's per-access [hit, miss] ranges.
        // "Not verified" is always a sound answer; the decomposition
        // backend (whose symbolic bounds carry ranges natively) covers
        // these programs.
        blazer_ir::budget::note_degradation(
            "selfcomp: cost model prices memory accesses as ranges; \
             composed counter instrumentation skipped",
        );
        return SelfCompResult {
            verified: false,
            diff_bounds: (None, None),
            time: start.elapsed(),
            composed_blocks: 0,
        };
    }
    let Composed { function: composed, k1, k2 } = compose(f, cost_model);
    if blazer_ir::budget::check().is_err() {
        // "Not verified" is always a sound answer for the baseline; don't
        // start the composed (state-space-doubled) analysis with an
        // exhausted budget.
        blazer_ir::budget::note_degradation(
            "selfcomp: composed analysis skipped by exhausted budget",
        );
        return SelfCompResult {
            verified: false,
            diff_bounds: (None, None),
            time: start.elapsed(),
            composed_blocks: composed.blocks().len(),
        };
    }

    // Analyze the composed function in a program context that still has
    // the extern declarations.
    let mut extended = program.clone();
    extended.add_function(composed.clone());

    let cfg = Cfg::new(&composed);
    let dims = DimMap::new(&composed);
    let graph = ProductGraph::full(&composed, &cfg);
    let init: Polyhedron = entry_state(&composed, &dims);
    let res = analyze(&extended, &composed, &dims, &graph, init);

    // State at the virtual exit node.
    let exit_node =
        graph.nodes().iter().position(|n| n.cfg_node == cfg.exit()).expect("exit in product");
    let exit_state = &res.states[exit_node];
    let diff = LinExpr::var(dims.var(k1)).sub(&LinExpr::var(dims.var(k2)));
    let (lo, hi) = exit_state.bounds(&diff);
    let eps = Rat::int(epsilon as i128);
    let verified = match (lo, hi) {
        (Some(l), Some(h)) => -eps <= l && h <= eps,
        _ => false,
    };
    SelfCompResult {
        verified,
        diff_bounds: (lo, hi),
        time: start.elapsed(),
        composed_blocks: composed.blocks().len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazer_lang::compile;

    fn run(src: &str, func: &str, eps: u64) -> SelfCompResult {
        let p = compile(src).unwrap();
        verify(&p, func, eps, &CostModel::unit())
    }

    #[test]
    fn straightline_verifies() {
        let r = run("fn f(h: int #high) { let x: int = h + 1; }", "f", 0);
        assert!(r.verified, "diff bounds: {:?}", r.diff_bounds);
    }

    #[test]
    fn balanced_loop_over_array_length_verifies() {
        // Both copies loop `len(a)` times (non-negative): the relational
        // invariants k − 2i = c and i ≤ len(a) survive widening, so
        // self-composition succeeds on this simple case.
        let src = "fn f(h: int #high, a: array) { \
            let i: int = 0; \
            while (i < len(a)) { i = i + 1; } \
        }";
        let r = run(src, "f", 0);
        assert!(r.verified, "diff bounds: {:?}", r.diff_bounds);
    }

    #[test]
    fn balanced_loop_over_possibly_negative_low_fails() {
        // With a possibly-negative `low`, the loop-exit invariant
        // i = max(low, 0) is not convex, so the composed analysis cannot
        // tie the two copies' counters together: a genuine precision loss
        // of the baseline that the trail decomposition does not suffer
        // (its per-trail iteration counts are max(0, ·) expressions).
        let src = "fn f(h: int #high, low: int) { \
            let i: int = 0; \
            while (i < low) { i = i + 1; } \
        }";
        let r = run(src, "f", 0);
        assert!(!r.verified);
    }

    #[test]
    fn unbalanced_high_branch_fails() {
        let src = "fn f(h: int #high) { \
            if (h > 0) { tick(100); } else { tick(1); } \
        }";
        let r = run(src, "f", 10);
        assert!(!r.verified);
    }

    #[test]
    fn compensating_branches_fail_under_selfcomp() {
        // Sec. 7 ex2: safe, and provable by the decomposition — but the
        // composed program's join loses the branch correlation, so the
        // baseline cannot verify it. This is the paper's motivation.
        let src = "fn f(h: int #high, x: int) { \
            if (h > x) { tick(1); } else { tick(2); } \
            if (h <= x) { tick(2); } else { tick(1); } \
        }";
        let r = run(src, "f", 0);
        assert!(!r.verified, "expected the baseline to lose precision, got {:?}", r.diff_bounds);
    }

    #[test]
    fn secret_loop_fails() {
        let src = "fn f(h: int #high) { \
            let i: int = 0; \
            while (i < h) { i = i + 1; } \
        }";
        let r = run(src, "f", 5);
        assert!(!r.verified);
    }

    #[test]
    fn null_tests_compose() {
        // Nullable lookups survive composition (Cond::Null remapping).
        let src = "extern fn get(u: array) -> array #high cost 5 len -1..8;\n\
            fn f(u: array) -> bool {                 let a: array = get(u);                 if (a == null) { return false; }                 return true;             }";
        let r = run(src, "f", 32);
        // Both copies share u but their lookups are independent secrets:
        // the baseline cannot bound the counter difference... here costs
        // are equal on both arms though, so it verifies.
        assert!(r.verified, "diff: {:?}", r.diff_bounds);
    }

    #[test]
    fn cache_model_declines_memory_functions_but_verifies_memory_free_ones() {
        // The cache model prices unclassified array accesses as [hit, miss]
        // ranges, which constant counter instrumentation cannot express:
        // the baseline must answer "not verified" (sound) rather than
        // compose with wrong constants.
        let mem = compile("fn f(h: int #high, a: array) -> int { return a[0]; }").unwrap();
        let r = verify(&mem, "f", 32, &CostModel::cache_aware());
        assert!(!r.verified);
        assert_eq!(r.composed_blocks, 0, "composition must be skipped entirely");
        // Memory-free programs have exact costs under every model and
        // still verify.
        let pure = compile("fn g(h: int #high) { let x: int = h + 1; }").unwrap();
        assert!(verify(&pure, "g", 0, &CostModel::cache_aware()).verified);
        assert!(verify(&pure, "g", 0, &CostModel::weighted()).verified);
    }

    #[test]
    fn composed_size_doubles() {
        let src = "fn f(x: int) { if (x > 0) { tick(1); } else { tick(2); } }";
        let p = compile(src).unwrap();
        let orig_blocks = p.function("f").unwrap().blocks().len();
        let r = run(src, "f", 100);
        assert_eq!(r.composed_blocks, 2 * orig_blocks + 2);
    }
}
