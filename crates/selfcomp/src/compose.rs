//! Building the sequential self-composition `C;C`.

use blazer_ir::builder::FunctionBuilder;
use blazer_ir::cost::CostModel;
use blazer_ir::{
    BinOp, BlockId, CallCost, Cond, Expr, Function, Inst, Operand, SecurityLabel, Terminator, Type,
    VarId,
};

/// The result of composing a function with itself.
#[derive(Debug)]
pub struct Composed {
    /// The composed function `<name>__selfcomp`.
    pub function: Function,
    /// The cost counter of the first copy.
    pub k1: VarId,
    /// The cost counter of the second copy.
    pub k2: VarId,
}

/// Builds the sequential self-composition of `f`:
///
/// * low parameters are shared between the copies;
/// * high parameters are duplicated (`x__1`, `x__2`);
/// * each copy increments its own cost counter per executed block,
///   following `cost_model` (value-dependent call summaries contribute
///   `coeff·magnitude + constant` computed inline);
/// * copy 1's returns jump to copy 2; copy 2's returns jump to a common
///   exit block.
pub fn compose(f: &Function, cost_model: &CostModel) -> Composed {
    let mut b = FunctionBuilder::new(format!("{}__selfcomp", f.name()));

    // Parameter layout: shared lows once, highs twice.
    let mut map1: Vec<Option<VarId>> = vec![None; f.vars().len()];
    let mut map2: Vec<Option<VarId>> = vec![None; f.vars().len()];
    for p in f.params() {
        let info = f.var(p.var);
        match p.label {
            SecurityLabel::Low => {
                let v = b.param(&info.name, info.ty, SecurityLabel::Low);
                map1[p.var.index()] = Some(v);
                map2[p.var.index()] = Some(v);
            }
            SecurityLabel::High => {
                let v1 = b.param(format!("{}__1", info.name), info.ty, SecurityLabel::High);
                map1[p.var.index()] = Some(v1);
            }
        }
    }
    // Second-copy high params must also be params (declared after the
    // firsts to keep a stable layout).
    for p in f.params() {
        if p.label == SecurityLabel::High {
            let info = f.var(p.var);
            let v2 = b.param(format!("{}__2", info.name), info.ty, SecurityLabel::High);
            map2[p.var.index()] = Some(v2);
        }
    }
    // Locals per copy.
    for (i, info) in f.vars().iter().enumerate() {
        if map1[i].is_none() {
            map1[i] = Some(b.local(format!("{}__1", info.name), info.ty));
        }
        if map2[i].is_none() {
            map2[i] = Some(b.local(format!("{}__2", info.name), info.ty));
        }
    }
    let k1 = b.local("k1", Type::Int);
    let k2 = b.local("k2", Type::Int);

    // Block layout: entry (init) → copy1 blocks → copy2 blocks → exit.
    let n = f.blocks().len();
    let copy1: Vec<BlockId> = (0..n).map(|_| b.new_block()).collect();
    let copy2: Vec<BlockId> = (0..n).map(|_| b.new_block()).collect();
    let exit = b.new_block();
    b.copy(k1, Operand::konst(0));
    b.copy(k2, Operand::konst(0));
    b.goto(copy1[f.entry().index()]);

    let maps = [&map1, &map2];
    let counters = [k1, k2];
    let copies = [&copy1, &copy2];
    let nexts = [copy2[f.entry().index()], exit];
    for copy in 0..2 {
        let map = maps[copy];
        let k = counters[copy];
        let remap = |v: VarId| map[v.index()].expect("mapped");
        let remap_op = |op: Operand| match op {
            Operand::Const(c) => Operand::Const(c),
            Operand::Var(v) => Operand::Var(remap(v)),
        };
        for (bid, block) in f.iter_blocks() {
            b.switch_to(copies[copy][bid.index()]);
            let mut const_cost: u64 = cost_model.term_cost(&block.term);
            let mut walker = cost_model.walker();
            for inst in &block.insts {
                // Instrument value-dependent call costs inline.
                if let Inst::Call {
                    args, cost: CallCost::Linear { arg, coeff, constant }, ..
                } = inst
                {
                    const_cost += constant;
                    if let Some(op) = args.get(*arg) {
                        let magnitude: Operand = match op {
                            Operand::Const(c) => Operand::Const((*c).max(0)),
                            Operand::Var(v) => {
                                let vv = remap(*v);
                                if f.var(*v).ty == Type::Array {
                                    let t = b.temp(Type::Int);
                                    b.array_len(t, vv);
                                    Operand::Var(t)
                                } else {
                                    Operand::Var(vv)
                                }
                            }
                        };
                        let scaled = b.temp(Type::Int);
                        b.binop(scaled, BinOp::Mul, magnitude, Operand::konst(*coeff as i64));
                        b.binop(k, BinOp::Add, k, scaled);
                    }
                } else {
                    match walker.inst_cost(inst) {
                        // Counter instrumentation needs a constant: callers
                        // (verify) pre-check `exact_for`, so a range here is
                        // a caller bug. The range's upper end keeps the
                        // instrumented program well-defined even then.
                        Ok(r) => {
                            debug_assert!(r.is_exact(), "compose needs an exact cost model");
                            const_cost += r.hi;
                        }
                        Err(CallCost::Const(c)) => const_cost += c,
                        Err(CallCost::Linear { .. }) => unreachable!("handled above"),
                    }
                }
                // The remapped instruction itself.
                let remapped = match inst {
                    Inst::Assign { dst, expr } => {
                        Inst::Assign { dst: remap(*dst), expr: remap_expr(expr, &remap, &remap_op) }
                    }
                    Inst::ArraySet { arr, index, value } => Inst::ArraySet {
                        arr: remap(*arr),
                        index: remap_op(*index),
                        value: remap_op(*value),
                    },
                    Inst::Call { dst, callee, args, cost } => Inst::Call {
                        dst: dst.map(remap),
                        callee: callee.clone(),
                        args: args.iter().map(|a| remap_op(*a)).collect(),
                        cost: *cost,
                    },
                    Inst::Nop => Inst::Nop,
                    Inst::Tick(t) => Inst::Tick(*t),
                    Inst::Havoc { dst } => Inst::Havoc { dst: remap(*dst) },
                };
                push_inst(&mut b, remapped);
            }
            if const_cost > 0 {
                b.binop(k, BinOp::Add, k, Operand::konst(const_cost as i64));
            }
            match &block.term {
                Terminator::Goto(t) => b.goto(copies[copy][t.index()]),
                Terminator::Branch { cond, then_bb, else_bb } => {
                    let cond = match cond {
                        Cond::Cmp(op, x, y) => Cond::Cmp(*op, remap_op(*x), remap_op(*y)),
                        Cond::Null { arr, is_null } => {
                            Cond::Null { arr: remap(*arr), is_null: *is_null }
                        }
                        Cond::Nondet => Cond::Nondet,
                    };
                    b.branch(cond, copies[copy][then_bb.index()], copies[copy][else_bb.index()]);
                }
                Terminator::Return(_) => b.goto(nexts[copy]),
            }
        }
    }
    b.switch_to(exit);
    b.ret(None);
    Composed { function: b.finish(), k1, k2 }
}

fn remap_expr(
    expr: &Expr,
    remap: &impl Fn(VarId) -> VarId,
    remap_op: &impl Fn(Operand) -> Operand,
) -> Expr {
    match expr {
        Expr::Operand(op) => Expr::Operand(remap_op(*op)),
        Expr::Unary(u, a) => Expr::Unary(*u, remap_op(*a)),
        Expr::Binary(op, a, b) => Expr::Binary(*op, remap_op(*a), remap_op(*b)),
        Expr::ArrayLen(v) => Expr::ArrayLen(remap(*v)),
        Expr::ArrayGet(v, i) => Expr::ArrayGet(remap(*v), remap_op(*i)),
        Expr::ArrayNew(n) => Expr::ArrayNew(remap_op(*n)),
    }
}

fn push_inst(b: &mut FunctionBuilder, inst: Inst) {
    match inst {
        Inst::Assign { dst, expr } => b.assign(dst, expr),
        Inst::ArraySet { arr, index, value } => b.array_set(arr, index, value),
        Inst::Call { dst, callee, args, cost } => b.call(dst, callee, args, cost),
        Inst::Nop => {}
        Inst::Tick(t) => b.tick(t),
        Inst::Havoc { dst } => b.havoc(dst),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazer_lang::compile;

    fn compose_src(src: &str, func: &str) -> Composed {
        let p = compile(src).unwrap();
        compose(p.function(func).unwrap(), &CostModel::unit())
    }

    #[test]
    fn shares_lows_duplicates_highs() {
        let c = compose_src("fn f(h: int #high, l: int, a: array) { }", "f");
        let names: Vec<&str> =
            c.function.params().iter().map(|p| c.function.var(p.var).name.as_str()).collect();
        assert_eq!(names, vec!["h__1", "l", "a", "h__2"]);
    }

    #[test]
    fn block_count_doubles_plus_glue() {
        let src = "fn f(x: int) { if (x > 0) { tick(1); } else { tick(2); } }";
        let p = compile(src).unwrap();
        let orig = p.function("f").unwrap();
        let c = compose(orig, &CostModel::unit());
        // entry + 2 copies + exit.
        assert_eq!(c.function.blocks().len(), 2 * orig.blocks().len() + 2);
        assert_eq!(c.function.validate(), Ok(()));
    }

    #[test]
    fn counters_accumulate_block_costs() {
        // Each copy of `tick(5)` adds 5 (+1 return) to its own counter.
        let src = "fn f() { tick(5); }";
        let c = compose_src(src, "f");
        // Find the k-increment instructions.
        let incs: Vec<String> = c
            .function
            .blocks()
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| {
                matches!(
                    i,
                    Inst::Assign { expr: Expr::Binary(BinOp::Add, _, Operand::Const(6)), .. }
                )
            })
            .map(|i| i.to_string())
            .collect();
        assert_eq!(incs.len(), 2, "one +6 increment per copy");
    }

    #[test]
    fn linear_call_costs_instrumented() {
        let src = "extern fn hash(p: array) -> int cost 3 * arg0 + 7;\n\
                   fn f(p: array) -> int { return hash(p); }";
        let c = compose_src(src, "f");
        let has_mul = c.function.blocks().iter().flat_map(|b| &b.insts).any(|i| {
            matches!(i, Inst::Assign { expr: Expr::Binary(BinOp::Mul, _, Operand::Const(3)), .. })
        });
        assert!(has_mul, "magnitude × coefficient must be computed inline");
    }

    #[test]
    fn returns_rewired_sequentially() {
        let src = "fn f(x: int) -> int { if (x > 0) { return 1; } return 0; }";
        let c = compose_src(src, "f");
        // No return-with-value remains; exactly one plain return at the end.
        let returns: Vec<&Terminator> = c
            .function
            .blocks()
            .iter()
            .map(|b| &b.term)
            .filter(|t| matches!(t, Terminator::Return(_)))
            .collect();
        assert_eq!(returns.len(), 1);
        assert!(matches!(returns[0], Terminator::Return(None)));
    }
}
