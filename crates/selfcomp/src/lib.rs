//! # blazer-selfcomp
//!
//! The self-composition baseline (Barthe–D'Argenio–Rezk) the paper argues
//! against.
//!
//! To check the 2-safety property "equal low inputs ⇒ similar running
//! times" with a 1-safety analyzer, [`compose()`](compose::compose) builds the sequential
//! product `C;C`: two copies of the function with *shared* low parameters,
//! *duplicated* high parameters, and an instrumented cost counter per copy.
//! [`verify()`](verify::verify) then runs the same polyhedral abstract interpreter used by
//! the decomposition approach and asks whether `|k₁ − k₂| ≤ c` holds at the
//! exit.
//!
//! The point of shipping this baseline is the comparison benchmark: on
//! programs whose safety hinges on *path* reasoning (compensating branches,
//! per-path tight loop bounds), the composed program's joins blur the
//! correlation between the two copies and verification fails, while the
//! trail decomposition of `blazer-core` succeeds — this is the paper's
//! central motivation (Sec. 1, Sec. 7).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compose;
pub mod verify;

pub use compose::{compose, Composed};
pub use verify::{verify, SelfCompResult};
