//! Attack synthesis end to end (Sec. 2.3): run the full Fig. 2 algorithm on
//! every unsafe Table-1 benchmark, print the synthesized attack
//! specifications, and concretize them into witness input pairs.
//!
//! Run with `cargo run --release --example attack_synthesis`.

use blazer::benchmarks::{all, Expected, Group};
use blazer::core::{concretize_outcome, Blazer, Config, Verdict};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for b in all() {
        if b.expected != Expected::Attack {
            continue;
        }
        let config = match b.group {
            Group::MicroBench => Config::microbench(),
            _ => Config::stac(),
        };
        let program = b.compile();
        let outcome = Blazer::new(config).analyze(&program, b.function)?;
        println!("== {} ==", b.name);
        match &outcome.verdict {
            Verdict::Attack(spec) => {
                println!("{spec}");
                match concretize_outcome(&program, &outcome, 400) {
                    Some((ia, ib)) => {
                        println!("  witnesses found: {ia:?} vs {ib:?}");
                    }
                    None => println!("  (no concrete witness found within the attempt budget)"),
                }
            }
            other => println!("  unexpected verdict: {other}"),
        }
        println!();
    }
    Ok(())
}
