//! Quickstart: compile a small program and prove it free of timing
//! channels — or get an attack specification with concrete witness inputs.
//!
//! Run with `cargo run --example quickstart`.

use blazer::core::{concretize_outcome, Blazer, Config, Verdict};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Example 1 from the paper (Sec. 2): the secret chooses between two
    // loops that both take time linear in the public input — safe.
    let balanced = blazer::lang::compile(
        "fn foo(high: int #high, low: int) {
            if (high == 0) {
                let i: int = 0;
                while (i < low) { i = i + 1; }
            } else {
                let i: int = low;
                while (i > 0) { i = i - 1; }
            }
        }",
    )?;

    let blazer = Blazer::new(Config::microbench());
    let outcome = blazer.analyze(&balanced, "foo")?;
    println!("== foo (balanced secret branch) ==");
    println!("verdict: {}", outcome.verdict);
    println!("{}", outcome.render_tree(&balanced));

    // The same program with one arm made constant — a timing channel.
    let leaky = blazer::lang::compile(
        "fn foo(high: int #high, low: int) {
            if (high == 0) {
                let i: int = 0;
                while (i < low) { i = i + 1; }
            } else {
                tick(1);
            }
        }",
    )?;
    let outcome = blazer.analyze(&leaky, "foo")?;
    println!("== foo (unbalanced secret branch) ==");
    println!("verdict: {}", outcome.verdict);
    if let Verdict::Attack(spec) = &outcome.verdict {
        println!("{spec}");
        // Concretize: find two inputs with equal lows and different costs.
        if let Some((a, b)) = concretize_outcome(&leaky, &outcome, 500) {
            println!("witness inputs A: {a:?}");
            println!("witness inputs B: {b:?}");
        }
    }
    println!("{}", outcome.render_tree(&leaky));
    Ok(())
}
