//! Section 3.4 beyond timing-channel freedom: the **channel capacity**
//! property (at most q distinct running times per public input) is a
//! (q+1)-safety property, and the quotient-partitioning framework handles
//! it with the same machinery.
//!
//! This example measures a program with a one-bit timing channel with the
//! concrete interpreter, then uses the executable Sec. 3 framework to show:
//! plain timing-channel freedom (q = 1, 2-safety) fails, but capacity q = 2
//! (3-safety) holds — and holds *via* a ψ-quotient partition with a
//! relational-by-property-sharing per-component property, exactly as
//! Example 7's generalization prescribes.
//!
//! Run with `cargo run --release --example channel_capacity`.

use blazer::core::quotient::{
    channel_capacity_phi, covers, is_psi_quotient_k, k_safety_holds, rbps_k, two_safety_holds,
    Partition,
};
use blazer::interp::{Interp, SeededOracle, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One secret bit decides between two fixed-cost paths: a channel of
    // capacity 2 (one bit), but no more.
    let program = blazer::lang::compile(
        "fn f(high: int #high, low: int) {
            let i: int = 0;
            while (i < low) { i = i + 1; }
            if (high % 2 == 0) { tick(5); } else { tick(55); }
        }",
    )?;

    // Enumerate a trace set concretely: (low, high, measured cost).
    let interp = Interp::new(&program);
    let mut traces: Vec<(i64, i64, u64)> = Vec::new();
    for low in 0..4i64 {
        for high in 0..6i64 {
            let t =
                interp.run("f", &[Value::Int(high), Value::Int(low)], &mut SeededOracle::new(0))?;
            traces.push((low, high, t.cost));
        }
    }
    println!("measured {} traces", traces.len());

    // q = 1 (plain tcf) fails: the secret bit is observable.
    let phi_tcf = |a: &(i64, i64, u64), b: &(i64, i64, u64)| a.0 != b.0 || a.2.abs_diff(b.2) <= 1;
    println!(
        "timing-channel freedom (2-safety): {}",
        if two_safety_holds(&traces, phi_tcf) { "holds" } else { "VIOLATED" }
    );

    // q = 2 (capacity one bit) holds, checked as a 3-safety property.
    let psi3 = |t: &[&(i64, i64, u64)]| t.windows(2).all(|w| w[0].0 == w[1].0);
    let phi_ccf = channel_capacity_phi(2, 1);
    println!(
        "channel capacity q = 2 (3-safety): {}",
        if k_safety_holds(&traces, 3, &phi_ccf) { "holds" } else { "VIOLATED" }
    );

    // And it holds *by decomposition*: partition on the public input
    // (ψ-quotient for the ternary ψ), with the per-component property
    // P_{f1,f2}: time within 1 of one of two public-input functions.
    let mut partition: Partition = Vec::new();
    for low in 0..4i64 {
        partition.push((0..traces.len()).filter(|&i| traces[i].0 == low).collect());
    }
    assert!(covers(traces.len(), &partition));
    assert!(is_psi_quotient_k(&traces, &partition, 3, psi3));
    // The two admissible public-input time functions, read off per low
    // value (in the analysis they come from the bound analysis; here the
    // measurements serve).
    let f1 = |low: i64| traces.iter().filter(|t| t.0 == low).map(|t| t.2).min().unwrap();
    let f2 = |low: i64| traces.iter().filter(|t| t.0 == low).map(|t| t.2).max().unwrap();
    let p = |t: &(i64, i64, u64)| t.2.abs_diff(f1(t.0)) <= 1 || t.2.abs_diff(f2(t.0)) <= 1;
    assert!(rbps_k(&traces, 3, p, &phi_ccf));
    assert!(traces.iter().all(p));
    println!(
        "verified via ψ-quotient partition + per-component P_{{f1,f2}} (Example 7 generalized)"
    );
    Ok(())
}
