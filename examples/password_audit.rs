//! Auditing password checkers: the Fig. 1 pair (`loginSafe` / `loginBad`).
//!
//! This walks the exact scenario the paper's overview uses: a login
//! function that looks up a stored (secret) password and compares it to an
//! attacker-supplied guess. The safe variant scans the whole guess; the bad
//! variant returns at the first mismatch (the Tenex bug), leaking the
//! length of the matching prefix.
//!
//! Run with `cargo run --release --example password_audit`.

use blazer::benchmarks::literature;
use blazer::core::{Blazer, Config, Verdict};
use blazer::interp::{Interp, SeededOracle, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let blazer = Blazer::new(Config::stac());

    println!("=== loginSafe (Fig. 1, top) ===");
    let safe = blazer::lang::compile(literature::LOGIN_SAFE)?;
    let outcome = blazer.analyze(&safe, "login_safe")?;
    println!("verdict: {}", outcome.verdict);
    println!("{}", outcome.render_tree(&safe));

    println!("=== loginBad (Fig. 1, bottom) ===");
    let bad = blazer::lang::compile(literature::LOGIN_UNSAFE)?;
    let outcome = blazer.analyze(&bad, "login_unsafe")?;
    println!("verdict: {}", outcome.verdict);
    if let Verdict::Attack(spec) = &outcome.verdict {
        println!("{spec}");
    }
    println!("{}", outcome.render_tree(&bad));

    // Demonstrate the leak concretely: fix the username and guess, vary
    // only the secret password, and watch the measured cost reveal the
    // matching prefix length.
    println!("=== concrete demonstration of the leak ===");
    let interp = Interp::new(&bad);
    let username = Value::array(vec![7, 7, 7]);
    let guess = Value::array(vec![1, 2, 3, 4, 5, 6]);
    for (desc, pw) in [
        ("no prefix match", vec![9, 9, 9, 9, 9, 9]),
        ("3-byte prefix  ", vec![1, 2, 3, 9, 9, 9]),
        ("full match     ", vec![1, 2, 3, 4, 5, 6]),
    ] {
        let mut oracle = SeededOracle::new(0).with_override("retrievePassword", Value::array(pw));
        let t = interp.run("login_unsafe", &[username.clone(), guess.clone()], &mut oracle)?;
        println!("secret password with {desc} -> {} cost units", t.cost);
    }
    println!("(the safe variant costs the same regardless:)");
    let interp = Interp::new(&safe);
    for (desc, pw) in
        [("no prefix match", vec![9, 9, 9, 9, 9, 9]), ("full match     ", vec![1, 2, 3, 4, 5, 6])]
    {
        let mut oracle = SeededOracle::new(0).with_override("retrievePassword", Value::array(pw));
        let t = interp.run("login_safe", &[username.clone(), guess.clone()], &mut oracle)?;
        println!("secret password with {desc} -> {} cost units", t.cost);
    }
    Ok(())
}
