//! Auditing modular exponentiation (the STAC `modPow` benchmarks and
//! Kocher's 1996 attack).
//!
//! Square-and-multiply exponentiation multiplies only when the current
//! secret exponent bit is set; without a countermeasure the running time is
//! proportional to the exponent's Hamming weight. The safe variant performs
//! a dummy multiply on the zero arm ("multiply-always").
//!
//! Run with `cargo run --release --example crypto_modpow`.

use blazer::benchmarks::stac;
use blazer::core::{Blazer, Config, Verdict};
use blazer::interp::{Interp, SeededOracle, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let blazer = Blazer::new(Config::stac());

    println!("=== modPow1_safe (Fig. 3: multiply-always) ===");
    let safe = blazer::lang::compile(stac::MODPOW1_SAFE)?;
    let outcome = blazer.analyze(&safe, "modPow1_safe")?;
    println!("verdict: {}", outcome.verdict);
    println!("{}", outcome.render_tree(&safe));

    println!("=== modPow1_unsafe (dummy multiply removed) ===");
    let unsafe_p = blazer::lang::compile(stac::MODPOW1_UNSAFE)?;
    let outcome = blazer.analyze(&unsafe_p, "modPow1_unsafe")?;
    println!("verdict: {}", outcome.verdict);
    if let Verdict::Attack(spec) = &outcome.verdict {
        println!("{spec}");
    }
    println!("{}", outcome.render_tree(&unsafe_p));

    // Demonstrate Kocher's observation concretely: same public inputs,
    // exponents of different Hamming weight, different cost.
    println!("=== Hamming-weight leak, measured ===");
    let interp = Interp::new(&unsafe_p);
    for (desc, bits) in [
        ("weight 0 ", vec![0; 16]),
        ("weight 8 ", [vec![1; 8], vec![0; 8]].concat()),
        ("weight 16", vec![1; 16]),
    ] {
        let t = interp.run(
            "modPow1_unsafe",
            &[Value::Int(3), Value::array(bits), Value::Int(1009)],
            &mut SeededOracle::new(0),
        )?;
        println!("16-bit exponent, {desc} -> {} cost units", t.cost);
    }
    println!("(multiply-always costs the same:)");
    let interp = Interp::new(&safe);
    for (desc, bits) in [("weight 0 ", vec![0; 16]), ("weight 16", vec![1; 16])] {
        let t = interp.run(
            "modPow1_safe",
            &[Value::Int(3), Value::array(bits), Value::Int(1009)],
            &mut SeededOracle::new(0),
        )?;
        println!("16-bit exponent, {desc} -> {} cost units", t.cost);
    }
    Ok(())
}
